// Table 1: time to compute the optimal solution for the replication and
// aggregation formulations on every evaluation topology.
//
// Paper reference (CPLEX on the authors' machine): Internet2 0.05/0.02s ...
// NTT 1.59/0.11s.  Absolute numbers differ (our from-scratch simplex vs
// CPLEX); the shape — solve time growing with PoP count, aggregation much
// cheaper than replication — is the reproduced result.
//
// The harness also measures re-solve cost: after the cold solve, the
// MaxLinkLoad budget is perturbed (0.4 -> 0.45, an RHS-only change, so the
// model shape is identical) and solved both from scratch and from the cold
// solve's final basis.  This is the controller's steady-state workload —
// traffic drifts, the LP re-runs — and warm starts are what make periodic
// re-optimization cheap.
#include "bench_common.h"

#include "core/aggregation_lp.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "traffic/matrix.h"

using namespace nwlb;

namespace {

int total_iterations(const core::Assignment& a) {
  return a.lp.iterations + a.lp.phase1_iterations;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1: optimization solve time",
      "gravity traffic, DC=10x at most-observed PoP, MaxLinkLoad=0.4; "
      "re-solve at MaxLinkLoad=0.45 cold vs warm-started");

  util::Table table({"Topology", "#PoPs", "Replication(s)", "Iters", "Aggregation(s)",
                     "Iters", "Vars(repl)"});
  util::Table resolve_table(
      {"Topology", "ColdIters", "WarmIters", "ColdSec", "WarmSec", "IterReduction"});
  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    const core::Scenario scenario(topology, tm);

    const core::ProblemInput repl_input = scenario.problem(core::Architecture::kPathReplicate);
    const core::ReplicationLp repl(repl_input);
    const core::Assignment repl_result = repl.solve();

    const core::ProblemInput agg_input =
        scenario.problem(core::Architecture::kPathNoReplicate);
    const core::AggregationLp agg(agg_input);
    const core::Assignment agg_result = agg.solve();

    table.row()
        .cell(topology.name)
        .cell(topology.graph.num_nodes())
        .cell(repl_result.lp.solve_seconds, 3)
        .cell(total_iterations(repl_result))
        .cell(agg_result.lp.solve_seconds, 3)
        .cell(total_iterations(agg_result))
        .cell(repl.num_process_vars() + repl.num_offload_vars());

    // Perturbed re-solve: same structure, slightly relaxed link budget.
    core::ScenarioConfig perturbed;
    perturbed.max_link_load = 0.45;
    const core::Scenario drifted(topology, tm, perturbed);
    const core::ProblemInput drifted_input =
        drifted.problem(core::Architecture::kPathReplicate);
    const core::ReplicationLp drifted_lp(drifted_input);
    const core::Assignment cold = drifted_lp.solve();
    const core::Assignment warm = drifted_lp.solve({}, &repl_result.lp.basis);
    resolve_table.row()
        .cell(topology.name)
        .cell(total_iterations(cold))
        .cell(total_iterations(warm))
        .cell(cold.lp.solve_seconds, 3)
        .cell(warm.lp.solve_seconds, 3)
        .cell(total_iterations(warm) > 0
                  ? static_cast<double>(total_iterations(cold)) /
                        static_cast<double>(total_iterations(warm))
                  : 0.0,
              2);
  }
  bench::print_table(table);
  std::cout << "-- re-solve after MaxLinkLoad drift (0.4 -> 0.45) --\n";
  bench::print_table(resolve_table);

  bench::JsonReport report("table1_solve_time");
  report.table("solve_time", table).table("warm_resolve", resolve_table);
  report.write_if_requested();
  return 0;
}
