// Controller failover under the replicated control plane (DESIGN.md §13).
//
// Five scenarios over identical traffic: a healthy baseline, a clean
// leader crash, a leader crash in the final third of an install window
// (installed but never advertised), a minority partition stranding the
// leader, and a crash-then-recover.  For each, the harness measures what
// the paper's operator would care about:
//
//   * time-to-new-generation — control intervals from the fault's onset
//     until the gate's frontier moves again (the failover time, in units
//     of the control interval);
//   * leaderless intervals and elections — the availability cost;
//   * max-load dip — the worst live plan load while the cluster was
//     re-electing, relative to the healthy baseline's steady state (the
//     data plane keeps the last good configuration, so the "dip" bounds
//     how stale that configuration got);
//   * session conservation — crash or not, every replayed session rides
//     exactly one generation.
//
// A scenario that never resumes installing, loses a session, or violates
// a gate invariant fails the process (exit 1) so CI catches it.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "dist/replicated_loop.h"
#include "obs/metrics.h"
#include "sim/failure.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "traffic/matrix.h"

namespace {

using namespace nwlb;

struct ScenarioResult {
  std::string name;
  int intervals_to_new_generation = -1;  // -1 = never resumed.
  int leaderless_intervals = 0;
  std::uint64_t elections = 0;
  std::uint64_t installs = 0;
  std::uint64_t final_generation = 0;
  int final_leader = -1;
  double worst_load = 0.0;  // Max live plan load across the run.
  double final_load = 0.0;
  double coverage = 0.0;
  bool conserved = false;
};

struct Deployment {
  topo::Topology topology;
  traffic::TrafficMatrix tm;
  core::ControllerOptions copts;
  // The bootstrap controller must outlive the runs: ProblemInput views its
  // scenario.
  std::unique_ptr<core::Controller> controller;
  core::EpochResult bootstrap;
  core::ProblemInput input;

  explicit Deployment(topo::Topology topo_in)
      : topology(std::move(topo_in)),
        tm(traffic::gravity_matrix(
            topology.graph,
            traffic::paper_total_sessions(topology.graph.num_nodes()))) {
    copts.architecture = core::Architecture::kPathReplicate;
    copts.lp.max_seconds = 10.0;
    controller = std::make_unique<core::Controller>(topology, tm, copts);
    bootstrap = controller->run({.tm = &tm});
    input = controller->scenario().problem(copts.architecture);
  }
};

/// One full scenario run: fresh replicas, fresh data plane, same trace
/// shape (the generator reseeds identically every scenario).
ScenarioResult run_scenario(const Deployment& dep, const std::string& name,
                            const sim::FailureSchedule* faults,
                            int fault_onset_interval, int intervals,
                            int window_sessions, int replicas) {
  sim::ReplayOptions ropts;
  ropts.failures = faults;
  sim::ReplaySimulator sim(dep.input, dep.bootstrap.bundle, ropts);
  sim::TraceConfig trace_config;
  trace_config.scanners = 0;
  sim::TraceGenerator generator(dep.input.classes, trace_config, 77);

  dist::ReplicatedLoopOptions dopts;
  dopts.replicas = replicas;
  dopts.replica.estimator.scale_to_total = dep.tm.total();
  dopts.faults = faults;
  dist::ReplicatedControlLoop loop(dep.topology, dep.tm, dep.copts, sim,
                                   dep.bootstrap.bundle, dopts);

  ScenarioResult result;
  result.name = name;
  std::uint64_t generation_at_onset = 0;
  for (int w = 0; w < intervals; ++w) {
    const dist::ReplicatedIntervalReport report =
        loop.run_interval(generator.generate(window_sessions), generator);
    if (w == fault_onset_interval - 1) generation_at_onset = report.generation;
    if (report.leader < 0) ++result.leaderless_intervals;
    if (report.install_attempted && report.rollout.installed) ++result.installs;
    if (report.epoch_run) {
      result.final_load = report.epoch.assignment.load_cost;
      result.worst_load = std::max(result.worst_load, result.final_load);
    }
    if (w >= fault_onset_interval && result.intervals_to_new_generation < 0 &&
        report.generation > generation_at_onset)
      result.intervals_to_new_generation = w - fault_onset_interval + 1;
    result.elections = report.elections_total;
    result.final_generation = report.generation;
    result.final_leader = report.leader;
  }
  const sim::ReplayStats stats = sim.stats();
  const sim::RolloutStats rollout = sim.rollout_stats();
  result.coverage = stats.coverage();
  result.conserved = rollout.sessions_current_generation +
                             rollout.sessions_draining_generation ==
                         stats.sessions_replayed &&
                     rollout.sessions_unassigned == 0;
  return result;
}

}  // namespace

int main() {
  const bool fast = util::env_flag("NWLB_FAST");
  const int window = fast ? 600 : 1500;
  const int intervals = fast ? 8 : 10;
  const int replicas = 3;
  const int onset = 2;  // Faults begin at this control interval.
  const std::uint64_t w = static_cast<std::uint64_t>(window);
  const topo::Topology topology = bench::selected_topologies().front();

  bench::print_header(
      "Controller failover: replicated control plane under faults",
      "topology=" + topology.name + "  replicas=" + std::to_string(replicas) +
          "  intervals=" + std::to_string(intervals) + " x " +
          std::to_string(window) + " sessions  lease=3 intervals  fault_onset=" +
          std::to_string(onset));

  Deployment dep(topology);

  // The fault schedules, all in global-session-index space.
  sim::FailureSchedule leader_crash;
  leader_crash.add({.kind = sim::FailureKind::kControllerCrash,
                    .target = 0,
                    .begin = onset * w});
  sim::FailureSchedule mid_install;
  mid_install.add({.kind = sim::FailureKind::kControllerCrash,
                   .target = 0,
                   .begin = onset * w - w / 6,  // Final third of window 1.
                   .end = (onset + 3) * w});
  sim::FailureSchedule partition;
  partition.add({.kind = sim::FailureKind::kPartition,
                 .target = 0b001,  // Leader 0 stranded in the minority.
                 .begin = onset * w,
                 .end = (onset + 4) * w});
  sim::FailureSchedule crash_recover;
  crash_recover.add({.kind = sim::FailureKind::kControllerCrash,
                     .target = 0,
                     .begin = onset * w,
                     .end = (onset + 3) * w});

  std::vector<ScenarioResult> results;
  results.push_back(run_scenario(dep, "baseline", nullptr, onset, intervals,
                                 window, replicas));
  results.push_back(run_scenario(dep, "leader_crash", &leader_crash, onset,
                                 intervals, window, replicas));
  // The mid-install crash fires inside window onset-1, so its "onset" for
  // recovery accounting is that window.
  results.push_back(run_scenario(dep, "crash_mid_install", &mid_install,
                                 onset - 1, intervals, window, replicas));
  results.push_back(run_scenario(dep, "minority_partition", &partition, onset,
                                 intervals, window, replicas));
  results.push_back(run_scenario(dep, "crash_recover", &crash_recover, onset,
                                 intervals, window, replicas));

  const double baseline_load = results.front().final_load;
  util::Table table({"Scenario", "TTNewGen", "Leaderless", "Elections",
                     "Installs", "FinalGen", "FinalLeader", "WorstLoad",
                     "LoadDip", "Coverage", "Conserved"});
  for (const ScenarioResult& r : results) {
    table.row()
        .cell(r.name)
        .cell(r.intervals_to_new_generation)
        .cell(r.leaderless_intervals)
        .cell(static_cast<long long>(r.elections))
        .cell(static_cast<long long>(r.installs))
        .cell(static_cast<long long>(r.final_generation))
        .cell(r.final_leader)
        .cell(r.worst_load, 4)
        .cell(baseline_load > 0.0 ? r.worst_load / baseline_load : 0.0, 4)
        .cell(r.coverage, 4)
        .cell(r.conserved ? "yes" : "NO");
  }
  bench::print_table(table);

  bench::JsonReport report("controller_failover");
  report.scalar("topology", topology.name)
      .scalar("replicas", static_cast<long long>(replicas))
      .scalar("intervals", static_cast<long long>(intervals))
      .scalar("window_sessions", static_cast<long long>(window))
      .scalar("fault_onset_interval", static_cast<long long>(onset))
      .scalar("baseline_load", baseline_load);
  for (const ScenarioResult& r : results) {
    report.scalar(r.name + "_time_to_new_generation",
                  static_cast<long long>(r.intervals_to_new_generation))
        .scalar(r.name + "_leaderless_intervals",
                static_cast<long long>(r.leaderless_intervals))
        .scalar(r.name + "_elections", static_cast<long long>(r.elections))
        .scalar(r.name + "_final_generation",
                static_cast<long long>(r.final_generation))
        .scalar(r.name + "_worst_load", r.worst_load)
        .scalar(r.name + "_coverage", r.coverage);
  }
  report.table("scenarios", table);
  report.write_if_requested();

  bool ok = true;
  for (const ScenarioResult& r : results) {
    if (!r.conserved) {
      std::cerr << "FAIL: " << r.name << " lost or double-assigned sessions\n";
      ok = false;
    }
    if (r.intervals_to_new_generation < 0) {
      std::cerr << "FAIL: " << r.name
                << " never resumed emitting generations after the fault\n";
      ok = false;
    }
    if (r.final_generation <= dep.bootstrap.bundle.generation) {
      std::cerr << "FAIL: " << r.name << " never moved the install frontier\n";
      ok = false;
    }
  }
  // Failover must complete within the lease promise plus one electing
  // interval: 3 lease ticks + 1, measured from onset.
  for (const ScenarioResult& r : results) {
    if (r.name == "baseline") continue;
    if (r.intervals_to_new_generation > 4) {
      std::cerr << "FAIL: " << r.name << " took "
                << r.intervals_to_new_generation
                << " intervals to a new generation (bound: 4)\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
