// Figure 11: maximum compute load vs MaxLinkLoad, datacenter capacity 10x.
//
// Expected shape: load falls as the allowed link load grows, with
// diminishing returns beyond MaxLinkLoad ~ 0.4 on most topologies.
#include "bench_common.h"

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "traffic/matrix.h"

using namespace nwlb;

int main() {
  const std::vector<double> mll_values{0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0};
  bench::print_header("Figure 11: max compute load vs MaxLinkLoad",
                      "DC=10x at most-observed PoP");

  std::vector<std::string> header{"Topology"};
  for (double mll : mll_values) header.push_back("MLL=" + util::format_double(mll, 2));
  util::Table table(header);

  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    auto& row = table.row().cell(topology.name);
    lp::Basis warm;  // Same model shape across the sweep: reuse the basis.
    for (double mll : mll_values) {
      core::ScenarioConfig config;
      config.max_link_load = mll;
      const core::Scenario scenario(topology, tm, config);
      const core::ProblemInput input = scenario.problem(core::Architecture::kPathReplicate);
      const core::ReplicationLp formulation(input);
      const core::Assignment a =
          formulation.solve({}, warm.empty() ? nullptr : &warm);
      warm = a.lp.basis;
      row.cell(a.load_cost, 3);
    }
  }
  bench::print_table(table);
  return 0;
}
