// Figure 11: maximum compute load vs MaxLinkLoad, datacenter capacity 10x.
//
// Expected shape: load falls as the allowed link load grows, with
// diminishing returns beyond MaxLinkLoad ~ 0.4 on most topologies.
//
// The sweep is also the warm-start showcase: every point shares the model
// shape (only the link-budget RHS moves), so each solve reuses the
// previous point's basis.  The harness runs the sweep both cold and warm
// and reports total simplex iterations for each, in the table footer and
// in the JSON report.
#include "bench_common.h"

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "traffic/matrix.h"

using namespace nwlb;

int main() {
  const std::vector<double> mll_values{0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0};
  bench::print_header("Figure 11: max compute load vs MaxLinkLoad",
                      "DC=10x at most-observed PoP; sweep solved cold and warm-started");

  std::vector<std::string> header{"Topology"};
  for (double mll : mll_values) header.push_back("MLL=" + util::format_double(mll, 2));
  util::Table table(header);
  util::Table iters_table(
      {"Topology", "ColdIters", "WarmIters", "ColdSec", "WarmSec", "IterReduction"});

  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    auto& row = table.row().cell(topology.name);
    lp::Basis warm;  // Same model shape across the sweep: reuse the basis.
    int cold_iters = 0, warm_iters = 0;
    double cold_sec = 0.0, warm_sec = 0.0;
    for (double mll : mll_values) {
      core::ScenarioConfig config;
      config.max_link_load = mll;
      const core::Scenario scenario(topology, tm, config);
      const core::ProblemInput input = scenario.problem(core::Architecture::kPathReplicate);
      const core::ReplicationLp formulation(input);
      const core::Assignment cold = formulation.solve();
      cold_iters += cold.lp.iterations + cold.lp.phase1_iterations;
      cold_sec += cold.lp.solve_seconds;
      const core::Assignment a =
          formulation.solve({}, warm.empty() ? nullptr : &warm);
      warm_iters += a.lp.iterations + a.lp.phase1_iterations;
      warm_sec += a.lp.solve_seconds;
      warm = a.lp.basis;
      row.cell(a.load_cost, 3);
    }
    iters_table.row()
        .cell(topology.name)
        .cell(cold_iters)
        .cell(warm_iters)
        .cell(cold_sec, 3)
        .cell(warm_sec, 3)
        .cell(warm_iters > 0
                  ? static_cast<double>(cold_iters) / static_cast<double>(warm_iters)
                  : 0.0,
              2);
  }
  bench::print_table(table);
  std::cout << "-- simplex iterations across the sweep, cold vs warm-started --\n";
  bench::print_table(iters_table);

  bench::JsonReport report("fig11_maxlinkload");
  report.table("max_load", table).table("warm_start_iters", iters_table);
  report.write_if_requested();
  return 0;
}
