// §8.2 "Choice of datacenter location": maximum compute load under the four
// placement strategies (DC=10x, MaxLinkLoad=0.4).
//
// Expected shape (from the paper / its extended report): the gap between
// strategies is small, and placing the DC at the PoP observing the most
// traffic works best across topologies — the default everywhere else.
#include "bench_common.h"

#include "core/scenario.h"
#include "traffic/matrix.h"

using namespace nwlb;

int main() {
  const core::DcPlacement placements[] = {
      core::DcPlacement::kMostOriginating,
      core::DcPlacement::kMostObserved,
      core::DcPlacement::kMostPaths,
      core::DcPlacement::kMedoid,
  };

  bench::print_header("Placement study: max load per DC placement strategy",
                      "DC=10x, MaxLinkLoad=0.4");

  std::vector<std::string> header{"Topology"};
  for (auto p : placements) header.emplace_back(core::to_string(p));
  util::Table table(header);

  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    auto& row = table.row().cell(topology.name);
    for (auto placement : placements) {
      core::ScenarioConfig config;
      config.placement = placement;
      const core::Scenario scenario(topology, tm, config);
      row.cell(scenario.solve(core::Architecture::kPathReplicate).load_cost, 3);
    }
  }
  bench::print_table(table);
  return 0;
}
