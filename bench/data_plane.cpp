// Data-plane fast path benchmark: flat-table decide latency and sharded
// parallel replay throughput.
//
// Two measurements per topology, both against the LP-optimal shim
// configuration (so segment counts and class mixes are realistic):
//
//   1. ns/decide — the compiled FlatConfig lookup (dense slot index +
//      bucketed binary search) vs the installable RangeTable path (class
//      hash map + ordered-map upper_bound).  This is the per-packet cost
//      the paper's §8.1 overhead claim rests on.
//   2. packets/sec — ReplaySimulator serial (1 worker) vs sharded parallel
//      replay, verifying the two produce byte-identical ReplayStats.
//
// Output: human-readable tables, plus a JSON report (NWLB_BENCH_JSON=path)
// for CI artifacts.  Knobs: NWLB_FAST, NWLB_TOPO, NWLB_SESSIONS,
// NWLB_WORKERS (default 4), NWLB_LOOKUPS (decide samples).
#include "bench_common.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "shim/flat_table.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "traffic/matrix.h"
#include "util/rng.h"

using namespace nwlb;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One pre-sampled decide query: which PoP's table, which class/direction,
/// and the packet hash.
struct LookupKey {
  std::uint32_t pop;
  int class_id;
  nids::Direction dir;
  std::uint32_t hash;
};

bool stats_identical(const sim::ReplayStats& a, const sim::ReplayStats& b) {
  return a.node_work == b.node_work && a.node_packets == b.node_packets &&
         a.link_replicated_bytes == b.link_replicated_bytes &&
         a.sessions_replayed == b.sessions_replayed &&
         a.packets_replayed == b.packets_replayed &&
         a.signature_matches == b.signature_matches &&
         a.tunnel_frames_sent == b.tunnel_frames_sent &&
         a.tunnel_frames_dropped == b.tunnel_frames_dropped &&
         a.tunnel_frames_detected_lost == b.tunnel_frames_detected_lost &&
         a.stateful_covered == b.stateful_covered &&
         a.stateful_missed == b.stateful_missed;
}

}  // namespace

int main() {
  const int sessions = util::env_int("NWLB_SESSIONS", util::env_flag("NWLB_FAST") ? 4000 : 12000);
  const int workers = util::env_int("NWLB_WORKERS", 4);
  const int lookups = util::env_int("NWLB_LOOKUPS", util::env_flag("NWLB_FAST") ? 2'000'000 : 8'000'000);

  bench::print_header(
      "Data-plane fast path: flat decide tables + sharded parallel replay",
      "sessions=" + std::to_string(sessions) + ", workers=" + std::to_string(workers) +
          ", decide samples=" + std::to_string(lookups) +
          ", gravity traffic, DC=10x, MaxLinkLoad=0.4");

  util::Table decide_table({"Topology", "Classes", "Segments", "TableKB", "FlatNs",
                            "MapNs", "Speedup"});
  util::Table replay_table({"Topology", "Sessions", "Packets", "SerialSec", "SerialPps",
                            "Workers", "ParallelSec", "ParallelPps", "Speedup",
                            "Identical"});
  util::Table lp_table({"Topology", "LpSolveSec", "LpIters"});
  std::uint64_t checksum = 0;  // Defeats dead-code elimination of the loops.

  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    const core::Scenario scenario(topology, tm);
    const core::ProblemInput input = scenario.problem(core::Architecture::kPathReplicate);
    const core::ReplicationLp formulation(input);
    const core::Assignment assignment = formulation.solve();
    const shim::ConfigBundle bundle = core::build_bundle(input, assignment);
    const auto& configs = bundle.configs;
    lp_table.row()
        .cell(topology.name)
        .cell(assignment.lp.solve_seconds, 4)
        .cell(assignment.lp.iterations + assignment.lp.phase1_iterations);

    // --- 1. decide latency: compiled flat tables vs map+scan tables. ---
    std::vector<shim::FlatConfig> flat;
    flat.reserve(configs.size());
    std::size_t segments = 0, table_bytes = 0;
    for (const auto& config : configs) {
      flat.emplace_back(config);
      segments += flat.back().num_segments();
      table_bytes += flat.back().table_bytes();
    }

    const int num_classes = static_cast<int>(input.classes.size());
    util::Rng rng(0xdec1de);
    std::vector<LookupKey> keys(1 << 15);
    for (auto& key : keys) {
      key.pop = static_cast<std::uint32_t>(rng.below(configs.size()));
      key.class_id = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_classes)));
      key.dir = rng.bernoulli(0.5) ? nids::Direction::kForward : nids::Direction::kReverse;
      key.hash = static_cast<std::uint32_t>(rng());
    }

    const int reps = std::max(1, lookups / static_cast<int>(keys.size()));
    const auto total = static_cast<double>(reps) * static_cast<double>(keys.size());

    const auto flat_start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
      for (const LookupKey& key : keys)
        checksum += static_cast<std::uint64_t>(
            flat[key.pop].lookup(key.class_id, key.dir, key.hash).kind);
    const double flat_ns = seconds_since(flat_start) * 1e9 / total;

    const auto map_start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
      for (const LookupKey& key : keys)
        checksum += static_cast<std::uint64_t>(
            configs[key.pop].lookup(key.class_id, key.dir, key.hash).kind);
    const double map_ns = seconds_since(map_start) * 1e9 / total;

    decide_table.row()
        .cell(topology.name)
        .cell(num_classes)
        .cell(segments)
        .cell(static_cast<double>(table_bytes) / 1024.0, 1)
        .cell(flat_ns, 2)
        .cell(map_ns, 2)
        .cell(map_ns / flat_ns, 2);

    // --- 2. replay throughput: serial vs sharded parallel. ---
    sim::TraceConfig tc;
    tc.scanners = 6;
    sim::TraceGenerator generator(input.classes, tc, /*seed=*/2012);
    const std::vector<sim::SessionSpec> trace = generator.generate(sessions);

    sim::ReplayOptions serial_opts;
    serial_opts.num_workers = 1;
    sim::ReplaySimulator serial(input, bundle, serial_opts);
    const auto serial_start = std::chrono::steady_clock::now();
    serial.replay(trace, generator);
    const double serial_sec = seconds_since(serial_start);
    const sim::ReplayStats serial_stats = serial.stats();

    sim::ReplayOptions parallel_opts;
    parallel_opts.num_workers = workers;
    sim::ReplaySimulator parallel(input, bundle, parallel_opts);
    const auto parallel_start = std::chrono::steady_clock::now();
    parallel.replay(trace, generator);
    const double parallel_sec = seconds_since(parallel_start);
    const sim::ReplayStats parallel_stats = parallel.stats();

    const auto packets = static_cast<double>(serial_stats.packets_replayed);
    replay_table.row()
        .cell(topology.name)
        .cell(sessions)
        .cell(serial_stats.packets_replayed)
        .cell(serial_sec, 3)
        .cell(packets / serial_sec, 0)
        .cell(parallel.num_workers())
        .cell(parallel_sec, 3)
        .cell(packets / parallel_sec, 0)
        .cell(serial_sec / parallel_sec, 2)
        .cell(stats_identical(serial_stats, parallel_stats) ? "yes" : "NO");
  }

  std::cout << "-- decide latency (lower FlatNs is better) --\n";
  bench::print_table(decide_table);
  std::cout << "-- replay throughput (Identical must be yes) --\n";
  bench::print_table(replay_table);
  std::cout << "-- LP solve (context for the configs above) --\n";
  bench::print_table(lp_table);

  bench::JsonReport report("data_plane");
  // Parallel speedup is bounded by the hardware: on a 1-core machine the
  // 4-worker replay can only demonstrate low overhead, not scaling.
  report.scalar("sessions", static_cast<long long>(sessions))
      .scalar("workers", static_cast<long long>(workers))
      .scalar("hw_threads",
              static_cast<long long>(std::thread::hardware_concurrency()))
      .scalar("decide_samples", static_cast<long long>(lookups))
      .scalar("checksum", static_cast<long long>(checksum & 0x7fffffff))
      .table("decide_ns", decide_table)
      .table("replay_throughput", replay_table)
      .table("lp_solve", lp_table);
  report.write_if_requested();
  return 0;
}
