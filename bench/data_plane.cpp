// Data-plane fast path benchmark: flat-table decide latency and sharded
// parallel replay throughput.
//
// Two measurements per topology, both against the LP-optimal shim
// configuration (so segment counts and class mixes are realistic):
//
//   1. ns/decide — the compiled FlatConfig lookup (dense slot index +
//      bucketed binary search) vs the installable RangeTable path (class
//      hash map + ordered-map upper_bound).  This is the per-packet cost
//      the paper's §8.1 overhead claim rests on.
//   2. packets/sec — ReplaySimulator serial (1 worker) vs sharded parallel
//      replay, verifying the two produce byte-identical ReplayStats.
//
//   3. signature engine ns/byte — the baseline node-per-state Aho–Corasick
//      vs the flat premultiplied table, single-stream and 4-lane batch
//      (the form the data plane drives); the batch must be >= 2x baseline.
//   4. run-to-completion headline — sessions/sec and payload bytes/sec of
//      the arena/SPSC-ring replay on a probe-heavy trace (16 B payloads,
//      one packet per direction), with a worker-scaling table.  The
//      serial/parallel byte-identity check is enforced unconditionally
//      (mismatch = exit 1); NWLB_BENCH_ENFORCE=1 additionally fails the
//      run when the headline misses target_sessions_per_sec (1M) or the
//      batch signature speedup misses 2x.
//
// Output: human-readable tables, plus a JSON report (NWLB_BENCH_JSON=path)
// for CI artifacts.  Knobs: NWLB_FAST, NWLB_TOPO, NWLB_SESSIONS,
// NWLB_WORKERS (default 4), NWLB_LOOKUPS (decide samples),
// NWLB_HEADLINE_SESSIONS, NWLB_AC_REPS, NWLB_LP_BUDGET_SEC,
// NWLB_BENCH_ENFORCE.
//
// Bootstrap configs come from the controller.  Every topology in the
// sweep — the full set included — must solve to a deployable optimum
// inside the LP budget (NWLB_LP_BUDGET_SEC, default 30); an epoch that
// degrades for a solver-limit reason fails the run.
#include "bench_common.h"

#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "core/scenario.h"
#include "nids/signature.h"
#include "nids/signature_baseline.h"
#include "shim/flat_table.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "traffic/matrix.h"
#include "util/rng.h"

using namespace nwlb;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One pre-sampled decide query: which PoP's table, which class/direction,
/// and the packet hash.
struct LookupKey {
  std::uint32_t pop;
  int class_id;
  nids::Direction dir;
  std::uint32_t hash;
};

bool stats_identical(const sim::ReplayStats& a, const sim::ReplayStats& b) {
  return a.node_work == b.node_work && a.node_packets == b.node_packets &&
         a.link_replicated_bytes == b.link_replicated_bytes &&
         a.sessions_replayed == b.sessions_replayed &&
         a.packets_replayed == b.packets_replayed &&
         a.signature_matches == b.signature_matches &&
         a.tunnel_frames_sent == b.tunnel_frames_sent &&
         a.tunnel_frames_dropped == b.tunnel_frames_dropped &&
         a.tunnel_frames_detected_lost == b.tunnel_frames_detected_lost &&
         a.stateful_covered == b.stateful_covered &&
         a.stateful_missed == b.stateful_missed;
}

}  // namespace

int main() {
  const int sessions = util::env_int("NWLB_SESSIONS", util::env_flag("NWLB_FAST") ? 4000 : 12000);
  const int workers = util::env_int("NWLB_WORKERS", 4);
  const int lookups = util::env_int("NWLB_LOOKUPS", util::env_flag("NWLB_FAST") ? 2'000'000 : 8'000'000);

  bench::print_header(
      "Data-plane fast path: flat decide tables + sharded parallel replay",
      "sessions=" + std::to_string(sessions) + ", workers=" + std::to_string(workers) +
          ", decide samples=" + std::to_string(lookups) +
          ", gravity traffic, DC=10x, MaxLinkLoad=0.4");

  util::Table decide_table({"Topology", "Classes", "Segments", "TableKB", "FlatNs",
                            "MapNs", "Speedup"});
  util::Table replay_table({"Topology", "Sessions", "Packets", "SerialSec", "SerialPps",
                            "Workers", "ParallelSec", "ParallelPps", "Speedup",
                            "Identical"});
  util::Table lp_table({"Topology", "LpSolveSec", "LpIters", "Status"});
  const int lp_budget_sec = util::env_int("NWLB_LP_BUDGET_SEC", 30);
  std::uint64_t checksum = 0;  // Defeats dead-code elimination of the loops.

  // --- 0. Signature engine ns/byte: baseline nodes vs flat table vs
  // 4-lane batch (the shape the replay drives the engine in). ---
  util::Table ac_table({"PayloadB", "BaselineNsB", "FlatNsB", "BatchNsB", "FlatX",
                        "BatchX"});
  double ac_speedup = 0.0;  // Baseline time / batch time over all bytes.
  {
    const std::vector<std::string> rules = nids::SignatureEngine::default_rules();
    const nids::SignatureEngine flat_engine(rules);
    const nids::BaselineSignatureEngine baseline_engine(rules);
    const int ac_reps =
        util::env_int("NWLB_AC_REPS", util::env_flag("NWLB_FAST") ? 80 : 250);
    util::Rng rng(0xac);
    double baseline_total_sec = 0.0, batch_total_sec = 0.0;
    for (const std::size_t payload_bytes : {64u, 160u, 256u}) {
      constexpr std::size_t kPayloads = 512;
      std::vector<std::string> payloads(kPayloads);
      std::vector<std::string_view> views(kPayloads);
      for (std::size_t i = 0; i < kPayloads; ++i) {
        payloads[i].resize(payload_bytes);
        // Benign filler matching the trace generator's alphabet.
        for (auto& ch : payloads[i]) ch = static_cast<char>('a' + rng.below(17));
        views[i] = payloads[i];
      }
      std::vector<std::size_t> counts(kPayloads);
      const double total_bytes =
          static_cast<double>(payload_bytes) * static_cast<double>(kPayloads) * ac_reps;

      const auto baseline_start = std::chrono::steady_clock::now();
      for (int r = 0; r < ac_reps; ++r)
        for (const std::string_view payload : views)
          checksum += baseline_engine.count_matches(payload);
      const double baseline_sec = seconds_since(baseline_start);

      const auto flat_start = std::chrono::steady_clock::now();
      for (int r = 0; r < ac_reps; ++r)
        for (const std::string_view payload : views)
          checksum += flat_engine.count_matches(payload);
      const double flat_sec = seconds_since(flat_start);

      const auto batch_start = std::chrono::steady_clock::now();
      for (int r = 0; r < ac_reps; ++r) {
        flat_engine.count_matches_batch(views.data(), counts.data(), kPayloads);
        checksum += counts[kPayloads - 1];
      }
      const double batch_sec = seconds_since(batch_start);

      // Cross-check the kernels against each other on this corpus.
      for (std::size_t i = 0; i < kPayloads; ++i) {
        if (counts[i] != baseline_engine.count_matches(views[i]) ||
            counts[i] != flat_engine.count_matches(views[i])) {
          std::cerr << "FAIL: signature engines disagree on payload " << i << "\n";
          return 1;
        }
      }

      baseline_total_sec += baseline_sec;
      batch_total_sec += batch_sec;
      ac_table.row()
          .cell(payload_bytes)
          .cell(baseline_sec * 1e9 / total_bytes, 2)
          .cell(flat_sec * 1e9 / total_bytes, 2)
          .cell(batch_sec * 1e9 / total_bytes, 2)
          .cell(baseline_sec / flat_sec, 2)
          .cell(baseline_sec / batch_sec, 2);
    }
    ac_speedup = baseline_total_sec / batch_total_sec;
  }

  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    core::ControllerOptions copts;
    copts.lp.max_seconds = static_cast<double>(lp_budget_sec);
    core::Controller controller(topology, tm, copts);
    const core::ProblemInput input =
        controller.scenario().problem(copts.architecture);
    core::EpochRequest request;
    request.tm = &tm;
    const core::EpochResult epoch = controller.run(request);
    const shim::ConfigBundle& bundle = epoch.bundle;
    const auto& configs = bundle.configs;
    lp_table.row()
        .cell(topology.name)
        .cell(epoch.solve_seconds, 4)
        .cell(epoch.iterations)
        .cell(epoch.degraded ? core::to_string(epoch.degraded_reasons)
                             : std::string("optimal"));
    // A solver-limit degradation means the LP layer regressed: the
    // steepest-edge solver handles every topology in the full sweep well
    // inside the budget, so this is a hard failure, enforcement flag or not.
    if (epoch.has_reason(core::DegradedReason::kLpBudgetExhausted) ||
        epoch.has_reason(core::DegradedReason::kLpFailed) ||
        epoch.has_reason(core::DegradedReason::kResolveBackoff)) {
      std::cerr << "FAIL: " << topology.name << " epoch degraded ("
                << core::to_string(epoch.degraded_reasons)
                << ") — the LP must solve inside the budget\n";
      return 1;
    }

    // --- 1. decide latency: compiled flat tables vs map+scan tables. ---
    std::vector<shim::FlatConfig> flat;
    flat.reserve(configs.size());
    std::size_t segments = 0, table_bytes = 0;
    for (const auto& config : configs) {
      flat.emplace_back(config);
      segments += flat.back().num_segments();
      table_bytes += flat.back().table_bytes();
    }

    const int num_classes = static_cast<int>(input.classes.size());
    util::Rng rng(0xdec1de);
    std::vector<LookupKey> keys(1 << 15);
    for (auto& key : keys) {
      key.pop = static_cast<std::uint32_t>(rng.below(configs.size()));
      key.class_id = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_classes)));
      key.dir = rng.bernoulli(0.5) ? nids::Direction::kForward : nids::Direction::kReverse;
      key.hash = static_cast<std::uint32_t>(rng());
    }

    const int reps = std::max(1, lookups / static_cast<int>(keys.size()));
    const auto total = static_cast<double>(reps) * static_cast<double>(keys.size());

    const auto flat_start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
      for (const LookupKey& key : keys)
        checksum += static_cast<std::uint64_t>(
            flat[key.pop].lookup(key.class_id, key.dir, key.hash).kind);
    const double flat_ns = seconds_since(flat_start) * 1e9 / total;

    const auto map_start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
      for (const LookupKey& key : keys)
        checksum += static_cast<std::uint64_t>(
            configs[key.pop].lookup(key.class_id, key.dir, key.hash).kind);
    const double map_ns = seconds_since(map_start) * 1e9 / total;

    decide_table.row()
        .cell(topology.name)
        .cell(num_classes)
        .cell(segments)
        .cell(static_cast<double>(table_bytes) / 1024.0, 1)
        .cell(flat_ns, 2)
        .cell(map_ns, 2)
        .cell(map_ns / flat_ns, 2);

    // --- 2. replay throughput: serial vs sharded parallel. ---
    sim::TraceConfig tc;
    tc.scanners = 6;
    sim::TraceGenerator generator(input.classes, tc, /*seed=*/2012);
    const std::vector<sim::SessionSpec> trace = generator.generate(sessions);

    sim::ReplayOptions serial_opts;
    serial_opts.num_workers = 1;
    sim::ReplaySimulator serial(input, bundle, serial_opts);
    const auto serial_start = std::chrono::steady_clock::now();
    serial.replay(trace, generator);
    const double serial_sec = seconds_since(serial_start);
    const sim::ReplayStats serial_stats = serial.stats();

    sim::ReplayOptions parallel_opts;
    parallel_opts.num_workers = workers;
    sim::ReplaySimulator parallel(input, bundle, parallel_opts);
    const auto parallel_start = std::chrono::steady_clock::now();
    parallel.replay(trace, generator);
    const double parallel_sec = seconds_since(parallel_start);
    const sim::ReplayStats parallel_stats = parallel.stats();

    const auto packets = static_cast<double>(serial_stats.packets_replayed);
    replay_table.row()
        .cell(topology.name)
        .cell(sessions)
        .cell(serial_stats.packets_replayed)
        .cell(serial_sec, 3)
        .cell(packets / serial_sec, 0)
        .cell(parallel.num_workers())
        .cell(parallel_sec, 3)
        .cell(packets / parallel_sec, 0)
        .cell(serial_sec / parallel_sec, 2)
        .cell(stats_identical(serial_stats, parallel_stats) ? "yes" : "NO");
  }

  // --- 3. Run-to-completion headline: end-to-end sessions/sec through the
  // full sharded data plane (decide -> payload -> engines -> tunnels) on a
  // probe-heavy trace, targeting >= 1M sessions/sec. ---
  util::Table rtc_table({"Workers", "Sessions", "Packets", "Sec", "SessionsPerSec",
                         "BytesPerSec", "Identical"});
  double headline_sps = 0.0, headline_bps = 0.0;
  bool identity_ok = true;
  {
    const topo::Topology topology = bench::selected_topologies().front();
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    core::ControllerOptions copts;
    copts.lp.max_seconds = static_cast<double>(lp_budget_sec);
    core::Controller controller(topology, tm, copts);
    const core::ProblemInput input =
        controller.scenario().problem(copts.architecture);
    core::EpochRequest request;
    request.tm = &tm;
    const shim::ConfigBundle bundle = controller.run(request).bundle;

    // Probe trace: minimum payloads, one packet per direction — the
    // session-rate stress shape (per-session overheads dominate, exactly
    // what a "sessions per second" headline should measure).
    sim::TraceConfig tc;
    tc.scanners = 0;
    tc.min_payload = 16;
    tc.max_payload = 16;
    tc.max_packets_per_direction = 1;
    const int headline_sessions = util::env_int(
        "NWLB_HEADLINE_SESSIONS", util::env_flag("NWLB_FAST") ? 150'000 : 300'000);
    sim::TraceGenerator generator(input.classes, tc, /*seed=*/0x10ad);
    const std::vector<sim::SessionSpec> trace = generator.generate(headline_sessions);
    double payload_bytes_total = 0.0;
    for (const sim::SessionSpec& s : trace)
      payload_bytes_total += static_cast<double>(s.payload_bytes) *
                             static_cast<double>(s.fwd_packets + s.rev_packets);

    std::optional<sim::ReplayStats> serial_stats;
    for (const int w : {1, 2, 4, 8}) {
      sim::ReplayOptions opts;
      opts.run_to_completion = true;
      opts.num_workers = w;
      sim::ReplaySimulator rtc(input, bundle, opts);
      const auto start = std::chrono::steady_clock::now();
      rtc.replay(trace, generator);
      const double sec = seconds_since(start);
      const sim::ReplayStats stats = rtc.stats();
      const double sps = static_cast<double>(trace.size()) / sec;
      const double bps = payload_bytes_total / sec;
      bool identical = true;
      if (!serial_stats) {
        serial_stats = stats;
      } else {
        identical = stats_identical(*serial_stats, stats);
        identity_ok = identity_ok && identical;
      }
      if (sps > headline_sps) {
        headline_sps = sps;
        headline_bps = bps;
      }
      rtc_table.row()
          .cell(w)
          .cell(trace.size())
          .cell(stats.packets_replayed)
          .cell(sec, 3)
          .cell(sps, 0)
          .cell(bps, 0)
          .cell(identical ? "yes" : "NO");
    }
  }

  std::cout << "-- signature engine ns/byte (BatchX must be >= 2) --\n";
  bench::print_table(ac_table);
  std::cout << "-- decide latency (lower FlatNs is better) --\n";
  bench::print_table(decide_table);
  std::cout << "-- replay throughput (Identical must be yes) --\n";
  bench::print_table(replay_table);
  std::cout << "-- run-to-completion headline (SessionsPerSec vs 1M target) --\n";
  bench::print_table(rtc_table);
  std::cout << "-- LP solve (context for the configs above) --\n";
  bench::print_table(lp_table);

  bench::JsonReport report("data_plane");
  // Parallel speedup is bounded by the hardware: on a 1-core machine the
  // 4-worker replay can only demonstrate low overhead, not scaling.
  report.scalar("sessions", static_cast<long long>(sessions))
      .scalar("workers", static_cast<long long>(workers))
      .scalar("hw_threads",
              static_cast<long long>(std::thread::hardware_concurrency()))
      .scalar("decide_samples", static_cast<long long>(lookups))
      .scalar("sessions_per_sec", headline_sps)
      .scalar("bytes_per_sec", headline_bps)
      .scalar("target_sessions_per_sec", 1'000'000.0)
      .scalar("rtc_identity_ok", identity_ok ? std::string("yes") : std::string("no"))
      .scalar("ac_count_matches_speedup", ac_speedup)
      .scalar("checksum", static_cast<long long>(checksum & 0x7fffffff))
      .table("signature_ns_per_byte", ac_table)
      .table("decide_ns", decide_table)
      .table("replay_throughput", replay_table)
      .table("rtc_scaling", rtc_table)
      .table("lp_solve", lp_table);
  report.write_if_requested();

  // The byte-identity invariant is a correctness property, not a perf
  // target: a mismatch fails the bench no matter what was requested.
  if (!identity_ok) {
    std::cerr << "FAIL: run-to-completion serial/parallel ReplayStats mismatch\n";
    return 1;
  }
  if (util::env_flag("NWLB_BENCH_ENFORCE")) {
    if (headline_sps < 1'000'000.0) {
      std::cerr << "FAIL: sessions_per_sec " << headline_sps
                << " below target 1000000\n";
      return 1;
    }
    if (ac_speedup < 2.0) {
      std::cerr << "FAIL: ac_count_matches_speedup " << ac_speedup << " below 2.0\n";
      return 1;
    }
  }
  return 0;
}
