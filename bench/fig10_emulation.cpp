// Figure 10: "live" emulation on the Internet2 topology — per-node compute
// work (CPU-instruction proxy) of an unmodified NIDS stack behind the shim,
// under Path,NoReplicate [29] vs Path,Replicate (this paper).
//
// Substitutes the paper's Emulab/Snort/PAPI setup with the nwlb trace
// replay: synthetic full-payload sessions, real Aho-Corasick + scan +
// session engines, per-node work-unit accounting.  DC capacity 8x,
// MaxLinkLoad 0.4, matching the paper's run.  Expected shape: replication
// roughly halves the most-loaded non-DC node's work.
#include "bench_common.h"

#include <algorithm>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "traffic/matrix.h"

using namespace nwlb;

namespace {

sim::ReplayStats run_architecture(const core::Scenario& scenario,
                                  core::Architecture arch, int sessions) {
  const core::ProblemInput input = scenario.problem(arch);
  const core::Assignment assignment = core::ReplicationLp(input).solve();
  const shim::ConfigBundle bundle = core::build_bundle(input, assignment);
  sim::ReplaySimulator simulator(input, bundle);
  sim::TraceConfig tc;
  tc.scanners = 6;
  sim::TraceGenerator generator(input.classes, tc, /*seed=*/2012);
  simulator.replay(generator.generate(sessions), generator);
  return simulator.stats();
}

}  // namespace

int main() {
  const int sessions = util::env_int("NWLB_SESSIONS", 20000);
  const auto topology = topo::make_internet2();
  const auto tm =
      traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11));
  core::ScenarioConfig config;
  config.dc_factor = 8.0;  // The paper's Emulab run used an 8x DC.
  config.max_link_load = 0.4;
  const core::Scenario scenario(topology, tm, config);

  bench::print_header("Figure 10: emulated per-node CPU work (Internet2 + DC)",
                      "sessions=" + std::to_string(sessions) +
                          ", DC=8x, MaxLinkLoad=0.4, work units ~ CPU instructions");

  const sim::ReplayStats no_repl =
      run_architecture(scenario, core::Architecture::kPathNoReplicate, sessions);
  const sim::ReplayStats repl =
      run_architecture(scenario, core::Architecture::kPathReplicate, sessions);

  util::Table table({"NodeID", "Name", "Path,NoReplicate", "Path,Replicate"});
  for (int j = 0; j < topology.graph.num_nodes(); ++j) {
    table.row()
        .cell(j + 1)
        .cell(topology.graph.name(j))
        .cell(no_repl.node_work[static_cast<std::size_t>(j)], 0)
        .cell(repl.node_work[static_cast<std::size_t>(j)], 0);
  }
  table.row().cell("DC").cell("Datacenter").cell(0.0, 0).cell(
      repl.node_work.back(), 0);
  bench::print_table(table);

  const double max_no_repl =
      *std::max_element(no_repl.node_work.begin(), no_repl.node_work.end());
  const double max_repl = *std::max_element(
      repl.node_work.begin(), repl.node_work.end() - 1);  // Excluding the DC.
  std::cout << "max non-DC work: no-replicate=" << static_cast<long long>(max_no_repl)
            << "  replicate=" << static_cast<long long>(max_repl)
            << "  reduction=" << max_no_repl / max_repl << "x"
            << "  (paper: ~2x)\n";
  return 0;
}
