// Shared plumbing for the experiment harnesses: topology selection, env
// knobs, and uniform output.  Every harness prints the rows/series of one
// table or figure of the paper; see DESIGN.md §4 for the index.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "topo/topology.h"
#include "util/env.h"
#include "util/table.h"

namespace nwlb::bench {

/// Topologies for this run: all eight by default, the four smallest under
/// NWLB_FAST=1, or a single one named by NWLB_TOPO.
inline std::vector<topo::Topology> selected_topologies() {
  if (const char* name = std::getenv("NWLB_TOPO"); name != nullptr && *name != '\0') {
    std::vector<topo::Topology> out;
    out.push_back(topo::topology_by_name(name));
    return out;
  }
  if (util::env_flag("NWLB_FAST")) return topo::small_topologies();
  return topo::all_topologies();
}

inline void print_header(const std::string& title, const std::string& setup) {
  std::cout << "=== " << title << " ===\n";
  if (!setup.empty()) std::cout << setup << "\n";
  std::cout << "\n";
}

inline void print_table(const util::Table& table) {
  table.print(std::cout);
  if (util::env_flag("NWLB_CSV")) std::cout << "CSV:\n" << table.to_csv() << "\n";
}

}  // namespace nwlb::bench
