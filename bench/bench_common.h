// Shared plumbing for the experiment harnesses: topology selection, env
// knobs, and uniform output.  Every harness prints the rows/series of one
// table or figure of the paper; see DESIGN.md §4 for the index.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "topo/topology.h"
#include "util/env.h"
#include "util/table.h"

namespace nwlb::bench {

/// Topologies for this run: all eight by default, the four smallest under
/// NWLB_FAST=1, or a single one named by NWLB_TOPO.
inline std::vector<topo::Topology> selected_topologies() {
  if (const char* name = std::getenv("NWLB_TOPO"); name != nullptr && *name != '\0') {
    std::vector<topo::Topology> out;
    out.push_back(topo::topology_by_name(name));
    return out;
  }
  if (util::env_flag("NWLB_FAST")) return topo::small_topologies();
  return topo::all_topologies();
}

inline void print_header(const std::string& title, const std::string& setup) {
  std::cout << "=== " << title << " ===\n";
  if (!setup.empty()) std::cout << setup << "\n";
  std::cout << "\n";
}

inline void print_table(const util::Table& table) {
  table.print(std::cout);
  if (util::env_flag("NWLB_CSV")) std::cout << "CSV:\n" << table.to_csv() << "\n";
}

/// Machine-readable benchmark output.  A harness registers scalars and
/// tables as it runs; write_if_requested() serializes everything to the
/// path in NWLB_BENCH_JSON (no-op when the knob is unset), so CI can
/// archive BENCH_<name>.json artifacts next to the human-readable stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  JsonReport& scalar(const std::string& key, double value) {
    entries_.emplace_back(key, util::format_double(value, 6));
    return *this;
  }
  JsonReport& scalar(const std::string& key, long long value) {
    entries_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& scalar(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + util::json_escape(value) + "\"");
    return *this;
  }
  JsonReport& table(const std::string& key, const util::Table& t) {
    entries_.emplace_back(key, t.to_json());
    return *this;
  }
  /// Embeds a metrics registry's full exposition (metrics + trace) under
  /// the "metrics" key — the bench-side view of `nwlbctl --metrics-out`.
  JsonReport& metrics(const obs::Registry& registry) {
    entries_.emplace_back("metrics", obs::to_json(registry));
    return *this;
  }

  std::string to_string() const {
    std::string out = "{\"bench\":\"" + util::json_escape(bench_) + "\"";
    for (const auto& [key, json] : entries_)
      out += ",\"" + util::json_escape(key) + "\":" + json;
    out += "}\n";
    return out;
  }

  /// Writes the report to $NWLB_BENCH_JSON when set.  Returns true when a
  /// file was written.
  bool write_if_requested() const {
    const char* path = std::getenv("NWLB_BENCH_JSON");
    if (path == nullptr || *path == '\0') return false;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "NWLB_BENCH_JSON: cannot open " << path << " for writing\n";
      return false;
    }
    out << to_string();
    std::cout << "JSON report written to " << path << "\n";
    return true;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> entries_;  // key -> raw JSON.
};

}  // namespace nwlb::bench
