// Failure recovery: coverage dip and time-to-recover under a mid-replay
// mirror crash, across the degradation-policy x control-response matrix.
//
// Setup: the replication architecture (§4) on one topology, traffic
// replayed in fixed-size control windows.  The datacenter mirror — the
// highest-leverage node in the deployment — crashes partway through the
// run and recovers several windows later.  Detection is honest: no oracle
// feed; the controller reacts only to the mirror-health verdicts the
// tunnel sequence-gap accounting produces (down after 2 bad windows, up
// after 2 clean ones).
//
// Matrix: {fail-closed, fail-open} shim policy x {none, patch, resolve}
// controller response.  "none" is the do-nothing baseline; "patch" is the
// tier-1 LP-free proportional rescale; "resolve" adds the tier-2 budgeted
// warm-started LP re-solve one window after the patch.  Reported per cell:
// pre-failure baseline coverage, worst-window dip, mean coverage across
// the failure interval, and windows-to-recover (first window at or above
// baseline after onset).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "obs/metrics.h"
#include "sim/failure.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "traffic/matrix.h"

namespace {

using namespace nwlb;

constexpr int kWindows = 12;
constexpr int kCrashBeginWindow = 3;
constexpr int kCrashEndWindow = 8;

enum class Response { kNone, kPatch, kResolve };

const char* to_string(Response r) {
  switch (r) {
    case Response::kNone: return "none";
    case Response::kPatch: return "patch";
    case Response::kResolve: return "resolve";
  }
  return "?";
}

struct CellResult {
  std::vector<double> coverage;  // Per window.
  double baseline = 0.0;         // Mean of the pre-failure windows.
  double dip = 1.0;              // Worst window during the failure.
  double failure_mean = 0.0;     // Mean across the failure interval.
  int recover_windows = -1;      // Onset -> first window back at baseline.
  std::uint64_t fail_open_packets = 0;
  std::uint64_t degraded_skipped = 0;
  std::uint64_t crash_skipped = 0;
  std::uint64_t blackholed = 0;
};

bool same_nodes(std::vector<int> a, std::vector<int> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

CellResult run_cell(const topo::Topology& topology, sim::DegradePolicy policy,
                    Response response, int window_sessions,
                    obs::Registry& registry) {
  const auto tm = traffic::gravity_matrix(
      topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
  core::ControllerOptions copts;
  copts.architecture = core::Architecture::kPathReplicate;
  copts.lp.max_seconds = 10.0;
  copts.metrics = &registry;
  core::Controller controller(topology, tm, copts);
  const core::EpochResult initial = controller.run({.tm = &tm});
  const core::ProblemInput input = controller.scenario().problem(copts.architecture);

  sim::FailureSchedule schedule;
  sim::FailureEvent crash;
  crash.kind = sim::FailureKind::kNodeCrash;
  crash.target = input.datacenter_id();
  crash.begin = static_cast<std::uint64_t>(kCrashBeginWindow) *
                static_cast<std::uint64_t>(window_sessions);
  crash.end = static_cast<std::uint64_t>(kCrashEndWindow) *
              static_cast<std::uint64_t>(window_sessions);
  schedule.add(crash);

  sim::ReplayOptions ropts;
  ropts.failures = &schedule;
  ropts.degrade = policy;
  ropts.fail_open_headroom = 0.5;
  sim::ReplaySimulator simulator(input, initial.bundle, ropts);
  sim::TraceConfig trace_config;
  trace_config.scanners = 0;
  sim::TraceGenerator generator(input.classes, trace_config, 77);

  CellResult cell;
  std::vector<int> active;
  bool pending_resolve = false;
  for (int w = 0; w < kWindows; ++w) {
    const sim::ReplayStats before = simulator.stats();
    simulator.replay(generator.generate(window_sessions), generator);
    const sim::ReplayStats after = simulator.stats();
    const std::uint64_t covered = after.stateful_covered - before.stateful_covered;
    const std::uint64_t missed = after.stateful_missed - before.stateful_missed;
    cell.coverage.push_back(
        covered + missed > 0
            ? static_cast<double>(covered) / static_cast<double>(covered + missed)
            : 0.0);

    if (response == Response::kNone) continue;
    const std::vector<int> detected = simulator.down_mirrors();
    if (!same_nodes(detected, active)) {
      core::FailureSet failures;
      failures.down_nodes = detected;
      if (!detected.empty()) {
        // Tier 1 the moment health flips: instant LP-free patch.
        simulator.install_bundle(
            controller.run({.failures = failures, .force_patch = true}).bundle);
        pending_resolve = response == Response::kResolve;
      } else if (response == Response::kResolve) {
        // Recovery: full re-solve back to the healthy optimum.
        simulator.install_bundle(controller.run({.tm = &tm}).bundle);
        pending_resolve = false;
      } else {
        // Patch-only recovery: reinstate the last known-good plan as-is.
        simulator.install_bundle(controller.run({.force_patch = true}).bundle);
      }
      active = detected;
    } else if (pending_resolve && !active.empty()) {
      // Tier 2, one control period later: budgeted re-solve over survivors.
      core::FailureSet failures;
      failures.down_nodes = active;
      simulator.install_bundle(
          controller.run({.tm = &tm, .failures = failures}).bundle);
      pending_resolve = false;
    }
  }

  double baseline = 0.0;
  for (int w = 0; w < kCrashBeginWindow; ++w) baseline += cell.coverage[static_cast<std::size_t>(w)];
  cell.baseline = baseline / kCrashBeginWindow;
  double failure_sum = 0.0;
  for (int w = kCrashBeginWindow; w < kCrashEndWindow; ++w) {
    const double c = cell.coverage[static_cast<std::size_t>(w)];
    cell.dip = std::min(cell.dip, c);
    failure_sum += c;
  }
  cell.failure_mean = failure_sum / (kCrashEndWindow - kCrashBeginWindow);
  for (int w = kCrashBeginWindow; w < kWindows; ++w) {
    if (cell.coverage[static_cast<std::size_t>(w)] >= cell.baseline - 0.02) {
      cell.recover_windows = w - kCrashBeginWindow;
      break;
    }
  }

  const sim::ReplayStats final_stats = simulator.stats();
  cell.fail_open_packets = final_stats.fail_open_packets;
  cell.degraded_skipped = final_stats.degraded_skipped_packets;
  cell.crash_skipped = final_stats.crash_skipped_packets;
  cell.blackholed = final_stats.tunnel_frames_blackholed;
  // Counters sum across the six matrix cells; gauges end up reflecting the
  // final cell — both deterministic, so the JSON artifact is reproducible.
  simulator.export_metrics(registry);
  return cell;
}

}  // namespace

int main() {
  const bool fast = util::env_flag("NWLB_FAST");
  const int window_sessions = fast ? 300 : 600;
  const topo::Topology topology = bench::selected_topologies().front();

  bench::print_header(
      "Failure recovery: coverage dip and time-to-recover",
      "topology=" + topology.name + "  windows=" + std::to_string(kWindows) +
          " x " + std::to_string(window_sessions) + " sessions  crash=DC mirror @ [" +
          std::to_string(kCrashBeginWindow) + ", " + std::to_string(kCrashEndWindow) +
          ")  detection=mirror health (no oracle)");

  const sim::DegradePolicy policies[] = {sim::DegradePolicy::kFailClosed,
                                         sim::DegradePolicy::kFailOpen};
  const Response responses[] = {Response::kNone, Response::kPatch, Response::kResolve};

  util::Table summary({"Policy", "Response", "Baseline", "Dip", "FailureMean",
                       "RecoverWindows", "FailOpenPkts", "DegradedSkipped"});
  util::Table series_table({"Window", "closed/none", "closed/patch", "closed/resolve",
                            "open/none", "open/patch", "open/resolve"});
  std::vector<CellResult> cells;
  nwlb::obs::Registry registry;
  for (const auto policy : policies) {
    for (const auto response : responses) {
      CellResult cell =
          run_cell(topology, policy, response, window_sessions, registry);
      summary.row()
          .cell(policy == sim::DegradePolicy::kFailOpen ? "fail-open" : "fail-closed")
          .cell(to_string(response))
          .cell(cell.baseline, 4)
          .cell(cell.dip, 4)
          .cell(cell.failure_mean, 4)
          .cell(cell.recover_windows)
          .cell(static_cast<long long>(cell.fail_open_packets))
          .cell(static_cast<long long>(cell.degraded_skipped));
      cells.push_back(std::move(cell));
    }
  }
  for (int w = 0; w < kWindows; ++w) {
    util::Table& row = series_table.row().cell(w);
    for (const CellResult& cell : cells) row.cell(cell.coverage[static_cast<std::size_t>(w)], 4);
  }

  bench::print_table(summary);
  std::cout << "\nPer-window coverage (crash spans windows " << kCrashBeginWindow
            << ".." << kCrashEndWindow - 1 << "):\n";
  bench::print_table(series_table);

  bench::JsonReport report("failure_recovery");
  report.scalar("topology", topology.name)
      .scalar("windows", static_cast<long long>(kWindows))
      .scalar("window_sessions", static_cast<long long>(window_sessions))
      .scalar("crash_begin_window", static_cast<long long>(kCrashBeginWindow))
      .scalar("crash_end_window", static_cast<long long>(kCrashEndWindow))
      .table("summary", summary)
      .table("coverage_series", series_table);
  report.metrics(registry);
  report.write_if_requested();
  return 0;
}
