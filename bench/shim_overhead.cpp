// §8.1 "Shim overhead" microbenchmarks (google-benchmark).
//
// The paper reports the shim adds no packet drops up to 1 Gbps in front of
// a single-threaded Snort/Bro.  The equivalent claim here: hash + class
// range lookup runs at tens of millions of packets per second — orders of
// magnitude above the per-packet budget of a 1 Gbps feed (~83K pkts/s at
// 1500B MTU) — so the decision layer is never the bottleneck; the
// signature engine (also measured below) is.
#include <benchmark/benchmark.h>

#include <vector>

#include "nids/signature.h"
#include "shim/config.h"
#include "shim/hash.h"
#include "shim/shim.h"
#include "util/rng.h"

namespace {

using namespace nwlb;

std::vector<nids::FiveTuple> make_tuples(std::size_t count) {
  nwlb::util::Rng rng(99);
  std::vector<nids::FiveTuple> out(count);
  for (auto& t : out) {
    t.src_ip = static_cast<std::uint32_t>(rng());
    t.dst_ip = static_cast<std::uint32_t>(rng());
    t.src_port = static_cast<std::uint16_t>(rng());
    t.dst_port = static_cast<std::uint16_t>(rng());
    t.protocol = 6;
  }
  return out;
}

void BM_HashTuple(benchmark::State& state) {
  const auto tuples = make_tuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim::hash_tuple(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTuple);

void BM_ShimDecide(benchmark::State& state) {
  shim::ShimConfig config;
  shim::RangeTable table;
  const auto third = shim::kHashSpace / 3;
  table.add(shim::HashRange{0, third, shim::Action::process()});
  table.add(shim::HashRange{third, 2 * third, shim::Action::replicate(7)});
  config.set_table(0, table);
  shim::Shim shim(0);
  shim.install(std::move(config));  // nwlb-lint: allow(raw-shim-install)
  const auto tuples = make_tuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.decide(0, tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShimDecide);

void BM_ShimDecideManyClasses(benchmark::State& state) {
  // A realistic config: one table per class for 110 classes (Internet2).
  shim::ShimConfig config;
  for (int c = 0; c < 110; ++c) {
    shim::RangeTable table;
    table.add(shim::HashRange{0, shim::kHashSpace / 2, shim::Action::process()});
    config.set_table(c, std::move(table));
  }
  shim::Shim shim(0);
  shim.install(std::move(config));  // nwlb-lint: allow(raw-shim-install)
  const auto tuples = make_tuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.decide(static_cast<int>(i % 110), tuples[i & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShimDecideManyClasses);

void BM_SignatureScan(benchmark::State& state) {
  const nids::SignatureEngine engine(nids::SignatureEngine::default_rules());
  nwlb::util::Rng rng(7);
  std::string payload(static_cast<std::size_t>(state.range(0)), '\0');
  for (auto& ch : payload) ch = static_cast<char>('a' + rng.below(26));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.count_matches(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SignatureScan)->Arg(256)->Arg(1500);

}  // namespace

BENCHMARK_MAIN();
