// Ablation: class granularity (§3 / footnote 1).
//
// The headline experiments use one aggregate class per PoP pair (as the
// paper's evaluation does "for brevity").  This bench refines each pair
// into seven per-application classes with heterogeneous footprints and
// session sizes (traffic/apps.h) and compares: the optimum, the LP size,
// and the solve time.  Expected shape: finer classes give the optimizer
// slightly more freedom (cheaper analyses can stay local while expensive
// ones offload), at a ~7x larger LP.
#include "bench_common.h"

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "traffic/apps.h"
#include "traffic/matrix.h"

using namespace nwlb;

int main() {
  bench::print_header("Ablation: aggregate vs per-application classes",
                      "DC=10x, MLL=0.4; default 7-application mix");

  util::Table table({"Topology", "Agg load", "Agg vars", "Agg time(s)",
                     "PerApp load", "PerApp vars", "PerApp time(s)"});
  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    const core::Scenario scenario(topology, tm);

    const core::ProblemInput agg_input =
        scenario.problem(core::Architecture::kPathReplicate);
    const core::ReplicationLp agg_lp(agg_input);
    const core::Assignment agg = agg_lp.solve();

    core::ProblemInput app_input = scenario.problem(core::Architecture::kPathReplicate);
    const traffic::AppClasses split =
        traffic::split_by_application(app_input.classes, traffic::default_app_mix());
    app_input.classes = split.classes;
    app_input.class_scale = split.footprint_scale;
    const core::ReplicationLp app_lp(app_input);
    const core::Assignment app = app_lp.solve();

    table.row()
        .cell(topology.name)
        .cell(agg.load_cost, 3)
        .cell(agg_lp.num_process_vars() + agg_lp.num_offload_vars())
        .cell(agg.lp.solve_seconds, 2)
        .cell(app.load_cost, 3)
        .cell(app_lp.num_process_vars() + app_lp.num_offload_vars())
        .cell(app.lp.solve_seconds, 2);
  }
  bench::print_table(table);
  return 0;
}
