// Figure 12: DCLoad - MaxNIDSLoad for four (MaxLinkLoad, DC-capacity)
// configurations.
//
// Expected shape: strongly negative (under-utilized DC) at MLL=0.1/DC=10x;
// near zero (DC as stressed as the rest) at MLL=0.4 or DC=2x.
#include "bench_common.h"

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "traffic/matrix.h"

using namespace nwlb;

int main() {
  struct Config {
    double mll;
    double dc;
  };
  const Config configs[] = {{0.1, 2.0}, {0.1, 10.0}, {0.4, 2.0}, {0.4, 10.0}};

  bench::print_header("Figure 12: DCLoad - MaxNIDSLoad",
                      "negative => the datacenter is under-utilized");

  std::vector<std::string> header{"Topology"};
  for (const auto& c : configs)
    header.push_back("MLL=" + util::format_double(c.mll, 1) + ",DC=" +
                     util::format_double(c.dc, 0) + "x");
  util::Table table(header);

  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    auto& row = table.row().cell(topology.name);
    lp::Basis warm;
    for (const auto& c : configs) {
      core::ScenarioConfig sc;
      sc.max_link_load = c.mll;
      sc.dc_factor = c.dc;
      const core::Scenario scenario(topology, tm, sc);
      const core::ProblemInput input = scenario.problem(core::Architecture::kPathReplicate);
      const core::Assignment a =
          core::ReplicationLp(input).solve({}, warm.empty() ? nullptr : &warm);
      warm = a.lp.basis;
      row.cell(a.datacenter_load(input) - a.max_pop_load(input), 3);
    }
  }
  bench::print_table(table);
  return 0;
}
