// Figure 18: aggregation — the compute/communication tradeoff traced by
// sweeping beta, normalized per topology by the maximum observed LoadCost
// and CommCost over the sweep.
//
// Expected shape: a frontier per topology; for most topologies some beta
// lands near the origin (both normalized costs below ~0.4).
#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "core/aggregation_lp.h"
#include "core/scenario.h"
#include "traffic/matrix.h"

using namespace nwlb;

int main() {
  bench::print_header("Figure 18: LoadCost vs CommCost sweeping beta",
                      "normalized per topology by the sweep maxima");

  // Log sweep over beta (normalized comm units; see AggregationLp).
  std::vector<double> betas;
  for (double b = 1.0 / 64.0; b <= 64.0 + 1e-9; b *= 2.0) betas.push_back(b);
  betas.insert(betas.begin(), 0.0);

  util::Table table({"Topology", "beta", "LoadCost", "CommCost(byte-hops)",
                     "norm.load", "norm.comm"});
  for (const auto& topology : bench::selected_topologies()) {
    const auto tm = traffic::gravity_matrix(
        topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
    const core::Scenario scenario(topology, tm);
    const core::ProblemInput input =
        scenario.problem(core::Architecture::kPathNoReplicate);

    std::vector<double> loads, comms;
    lp::Basis warm;
    for (double beta : betas) {
      core::AggregationOptions opts;
      opts.beta = beta;
      const core::Assignment a =
          core::AggregationLp(input, opts).solve({}, warm.empty() ? nullptr : &warm);
      warm = a.lp.basis;
      loads.push_back(a.load_cost);
      comms.push_back(a.comm_cost);
    }
    const double max_load = *std::max_element(loads.begin(), loads.end());
    const double max_comm = *std::max_element(comms.begin(), comms.end());
    for (std::size_t i = 0; i < betas.size(); ++i) {
      table.row()
          .cell(topology.name)
          .cell(betas[i], 4)
          .cell(loads[i], 3)
          .cell(comms[i], 0)
          .cell(max_load > 0 ? loads[i] / max_load : 0.0, 3)
          .cell(max_comm > 0 ? comms[i] / max_comm : 0.0, 3);
    }
  }
  bench::print_table(table);
  return 0;
}
