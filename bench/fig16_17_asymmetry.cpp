// Figures 16 + 17: routing asymmetry — median detection miss rate (Fig. 16)
// and median maximum compute load (Fig. 17) vs the expected overlap factor
// theta, for Ingress / Path (on-path only) / DC-0.4 (replication with
// MaxLinkLoad=0.4).
//
// Expected shape (Fig. 16): Ingress misses heavily at every overlap; Path
// misses at low overlap and improves as routes align; DC-0.4 stays near
// zero.  (Fig. 17): Ingress load is *low* because it ignores most traffic;
// the DC curve rises then falls as the link-load cap stops binding.
#include "bench_common.h"

#include "core/scenario.h"
#include "core/split_lp.h"
#include "topo/overlap.h"
#include "traffic/matrix.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace nwlb;

int main() {
  const int configs_per_theta = util::env_int("NWLB_CONFIGS", 12);
  const char* topo_name = std::getenv("NWLB_TOPO");
  const auto topology =
      topo::topology_by_name(topo_name != nullptr && *topo_name ? topo_name : "Internet2");

  bench::print_header(
      "Figures 16+17: miss rate and max load vs expected overlap",
      topology.name + ", " + std::to_string(configs_per_theta) +
          " random configurations per theta (paper: 50; set NWLB_CONFIGS), medians");

  const auto tm = traffic::gravity_matrix(
      topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
  const core::Scenario scenario(topology, tm);
  const topo::AsymmetricRouteGenerator generator(scenario.routing());

  struct Mode {
    const char* label;
    core::SplitMode mode;
    bool with_dc;
  };
  const Mode modes[] = {
      {"Ingress", core::SplitMode::kIngressOnly, false},
      {"Path", core::SplitMode::kOnPathOnly, false},
      {"DC-0.4", core::SplitMode::kWithDatacenter, true},
  };

  util::Table miss_table({"theta", "Ingress", "Path", "DC-0.4"});
  util::Table load_table({"theta", "Ingress", "Path", "DC-0.4"});

  for (double theta : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    std::vector<std::vector<double>> miss(3), load(3);
    for (int trial = 0; trial < configs_per_theta; ++trial) {
      // One random asymmetric routing configuration, shared by all modes.
      core::ProblemInput dc_input = scenario.problem(core::Architecture::kPathReplicate);
      nwlb::util::Rng rng(nwlb::util::derive_seed(1617,
          static_cast<std::uint64_t>(theta * 100) * 1000 + static_cast<std::uint64_t>(trial)));
      traffic::apply_asymmetry(dc_input.classes, generator, theta, rng);

      core::ProblemInput path_input = dc_input;
      path_input.datacenter.attach_pop = -1;
      path_input.capacities = nids::NodeCapacities(topology.graph.num_nodes(),
                                                   scenario.base_capacity());
      path_input.mirror_sets.assign(
          static_cast<std::size_t>(topology.graph.num_nodes()), {});

      for (std::size_t m = 0; m < std::size(modes); ++m) {
        core::SplitOptions opts;
        opts.mode = modes[m].mode;
        const core::ProblemInput& input = modes[m].with_dc ? dc_input : path_input;
        const core::Assignment a = core::SplitTrafficLp(input, opts).solve();
        miss[m].push_back(a.miss_rate);
        load[m].push_back(a.load_cost);
      }
    }
    auto& miss_row = miss_table.row().cell(theta, 1);
    auto& load_row = load_table.row().cell(theta, 1);
    for (std::size_t m = 0; m < std::size(modes); ++m) {
      miss_row.cell(util::median(miss[m]), 3);
      load_row.cell(util::median(load[m]), 3);
    }
  }
  std::cout << "Figure 16: median detection miss rate\n";
  bench::print_table(miss_table);
  std::cout << "Figure 17: median maximum compute load\n";
  bench::print_table(load_table);
  return 0;
}
