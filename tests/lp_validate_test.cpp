// Solution certification (lp/validate.h): a genuinely solved model must
// certify, and corrupted copies of the same solution must be rejected with
// a violation naming the broken condition.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lp/revised_simplex.h"
#include "lp/validate.h"
#include "util/rng.h"

namespace nwlb::lp {
namespace {

using nwlb::util::Rng;

// A small production-shaped LP: a transportation problem with both row
// senses, bounded variables, and a non-degenerate optimum.
Model make_model() {
  Model m;
  std::vector<VarId> x;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      x.push_back(m.add_variable(0.0, 4.0, 1.0 + 0.7 * i + 0.3 * j));
  const double supply[3] = {3.0, 4.0, 2.0};
  const double demand[3] = {2.0, 3.0, 4.0};
  for (int i = 0; i < 3; ++i) {
    const RowId r = m.add_row(Sense::kLessEqual, supply[i]);
    for (int j = 0; j < 3; ++j) m.add_coefficient(r, x[3 * i + j], 1.0);
  }
  for (int j = 0; j < 3; ++j) {
    const RowId r = m.add_row(Sense::kGreaterEqual, demand[j]);
    for (int i = 0; i < 3; ++i) m.add_coefficient(r, x[3 * i + j], 1.0);
  }
  return m;
}

bool mentions(const SolutionValidationReport& report, const std::string& needle) {
  for (const std::string& v : report.violations)
    if (v.find(needle) != std::string::npos) return true;
  return false;
}

TEST(LpValidate, CertifiesSolvedModel) {
  const Model m = make_model();
  const Solution sol = solve_revised(m);
  ASSERT_EQ(sol.status, Status::kOptimal);
  const SolutionValidationReport report = validate_solution(m, sol);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_LE(report.primal_residual, 1e-6);
  EXPECT_LE(report.dual_residual, 1e-5);
  EXPECT_LE(report.duality_gap, 1e-4);
}

TEST(LpValidate, CertifiesRandomModels) {
  Rng rng(20260805);
  for (int trial = 0; trial < 20; ++trial) {
    Model m;
    std::vector<VarId> vars;
    const int n = 4 + static_cast<int>(rng.below(5));
    for (int j = 0; j < n; ++j)
      vars.push_back(m.add_variable(0.0, 1.0 + rng.uniform(), rng.uniform(-1.0, 1.0)));
    const int rows = 3 + static_cast<int>(rng.below(4));
    for (int r = 0; r < rows; ++r) {
      const RowId row = m.add_row(Sense::kLessEqual, 1.0 + 2.0 * rng.uniform());
      for (const VarId v : vars)
        if (rng.bernoulli(0.6)) m.add_coefficient(row, v, rng.uniform(0.1, 1.0));
    }
    const Solution sol = solve_revised(m);
    ASSERT_EQ(sol.status, Status::kOptimal) << "trial " << trial;
    const SolutionValidationReport report = validate_solution(m, sol);
    EXPECT_TRUE(report.ok()) << "trial " << trial << "\n" << report.to_string();
  }
}

TEST(LpValidate, RejectsPerturbedPrimal) {
  const Model m = make_model();
  Solution sol = solve_revised(m);
  ASSERT_EQ(sol.status, Status::kOptimal);
  sol.x[0] += 10.0;  // Blows through its upper bound and the supply row.
  const SolutionValidationReport report = validate_solution(m, sol);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "primal residual")) << report.to_string();
  EXPECT_GT(report.primal_residual, 1.0);
}

TEST(LpValidate, RejectsStaleObjective) {
  const Model m = make_model();
  Solution sol = solve_revised(m);
  ASSERT_EQ(sol.status, Status::kOptimal);
  sol.objective += 5.0;
  const SolutionValidationReport report = validate_solution(m, sol);
  EXPECT_TRUE(mentions(report, "stored objective")) << report.to_string();
}

TEST(LpValidate, RejectsCorruptedDuals) {
  const Model m = make_model();
  Solution sol = solve_revised(m);
  ASSERT_EQ(sol.status, Status::kOptimal);
  ASSERT_FALSE(sol.duals.empty());
  // A <= row demands y <= tol under the repo's sign convention.
  sol.duals[0] = 3.0;
  const SolutionValidationReport report = validate_solution(m, sol);
  EXPECT_FALSE(report.ok()) << report.to_string();
  EXPECT_GT(report.dual_residual, 1e-3);
}

TEST(LpValidate, RejectsWrongSizedDuals) {
  const Model m = make_model();
  Solution sol = solve_revised(m);
  sol.duals.pop_back();
  const SolutionValidationReport report = validate_solution(m, sol);
  EXPECT_TRUE(mentions(report, "dual vector has size")) << report.to_string();
}

TEST(LpValidate, RejectsCorruptedBasis) {
  const Model m = make_model();
  Solution sol = solve_revised(m);
  ASSERT_GE(sol.basis.basic.size(), 2u);
  sol.basis.basic[1] = sol.basis.basic[0];  // Duplicate column.
  SolutionValidationReport report = validate_solution(m, sol);
  EXPECT_TRUE(mentions(report, "duplicate column")) << report.to_string();

  Solution sol2 = solve_revised(m);
  sol2.basis.basic[0] = -7;  // Outside the augmented column space.
  report = validate_solution(m, sol2);
  EXPECT_TRUE(mentions(report, "augmented column space")) << report.to_string();

  // check_basis = false must ignore the same corruption.
  SolutionValidationOptions lax;
  lax.check_basis = false;
  EXPECT_TRUE(validate_solution(m, sol2, lax).ok());
}

TEST(LpValidate, RequireDualsFlagsTheirAbsence) {
  const Model m = make_model();
  Solution sol = solve_revised(m);
  sol.duals.clear();
  SolutionValidationOptions options;
  EXPECT_TRUE(validate_solution(m, sol, options).ok());
  options.require_duals = true;
  EXPECT_TRUE(mentions(validate_solution(m, sol, options), "duals required"));
}

TEST(LpValidate, NonOptimalStatusesOnlyGetStructuralChecks) {
  const Model m = make_model();
  Solution sol;
  sol.status = Status::kIterationLimit;
  EXPECT_TRUE(validate_solution(m, sol).ok());
  sol.basis.basic = {0, 0, 0, 0, 0, 0};  // Structurally broken snapshot.
  sol.basis.nonbasic_state.resize(15);
  EXPECT_FALSE(validate_solution(m, sol).ok());
}

}  // namespace
}  // namespace nwlb::lp
