// Shim config validation (shim/validate.h): mapper-produced configs must
// certify network-wide, and hand-corrupted configs must be rejected with a
// violation naming the broken §7.1 invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "shim/validate.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::shim {
namespace {

bool mentions(const std::vector<std::string>& violations, const std::string& needle) {
  for (const std::string& v : violations)
    if (v.find(needle) != std::string::npos) return true;
  return false;
}

std::string join(const std::vector<std::string>& violations) {
  std::string out;
  for (const std::string& v : violations) out += v + "\n";
  return out;
}

std::vector<ShimConfig> solved_configs(core::ProblemInput& input) {
  const topo::Topology topology = topo::make_internet2();
  const traffic::TrafficMatrix tm =
      traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11));
  core::Scenario scenario(topology, tm);
  input = scenario.problem(core::Architecture::kPathReplicate);
  const core::Assignment a = core::ReplicationLp(input).solve();
  return core::build_shim_configs(input, a);
}

TEST(ShimValidate, CertifiesMapperOutputNetworkWide) {
  core::ProblemInput input;
  const auto configs = solved_configs(input);
  ConfigValidationOptions options;
  options.num_classes = static_cast<int>(input.classes.size());
  // The §4 replication LP assigns every session somewhere: full coverage.
  options.require_full_coverage = true;
  const auto violations = validate_configs(configs, options);
  EXPECT_TRUE(violations.empty()) << join(violations);
}

TEST(ShimValidate, AcceptsSingleNodeConfig) {
  RangeTable table;
  table.add(HashRange{0, kHashSpace / 2, Action::process()});
  table.add(HashRange{kHashSpace / 2, kHashSpace, Action::replicate(3)});
  ShimConfig config;
  config.set_table(0, table);
  EXPECT_TRUE(validate_config(config).empty());
}

TEST(ShimValidate, RejectsCrossNodeOverlap) {
  // Node 0 owns [0, 3/4); node 1 owns [1/2, 1): the middle quarter has two
  // responsible nodes, which double-analyzes that slice of traffic.
  RangeTable t0;
  t0.add(HashRange{0, 3 * (kHashSpace / 4), Action::process()});
  RangeTable t1;
  t1.add(HashRange{kHashSpace / 2, kHashSpace, Action::process()});
  std::vector<ShimConfig> configs(2);
  configs[0].set_table(0, t0);
  configs[1].set_table(0, t1);

  ConfigValidationOptions options;
  options.num_classes = 1;
  options.bidirectional_samples = 0;
  const auto violations = validate_configs(configs, options);
  EXPECT_TRUE(mentions(violations, "both own hashes")) << join(violations);
}

TEST(ShimValidate, RejectsCoverageGap) {
  RangeTable t0;
  t0.add(HashRange{0, kHashSpace / 2, Action::process()});
  std::vector<ShimConfig> configs(1);
  configs[0].set_table(0, t0);

  ConfigValidationOptions options;
  options.num_classes = 1;
  options.bidirectional_samples = 0;
  EXPECT_TRUE(validate_configs(configs, options).empty());
  options.require_full_coverage = true;
  const auto violations = validate_configs(configs, options);
  EXPECT_TRUE(mentions(violations, "cover")) << join(violations);
}

TEST(ShimValidate, RejectsMirrorOnProcessAction) {
  // RangeTable::add only vets replicate mirrors, so a stray mirror on a
  // process action is exactly the corruption the validator must catch.
  RangeTable table;
  table.add(HashRange{0, kHashSpace, Action{Action::Kind::kProcess, 5}});
  ShimConfig config;
  config.set_table(0, table);
  const auto violations = validate_config(config);
  EXPECT_TRUE(mentions(violations, "carries a mirror node")) << join(violations);
}

TEST(ShimValidate, RejectsBidirectionalMismatch) {
  // Forward traffic of the session is processed at node 0, reverse at
  // node 1: the two halves of one session land on different NIDS instances.
  RangeTable process_all;
  process_all.add(HashRange{0, kHashSpace, Action::process()});
  std::vector<ShimConfig> configs(2);
  configs[0].set_table(0, nids::Direction::kForward, process_all);
  configs[1].set_table(0, nids::Direction::kReverse, process_all);

  ConfigValidationOptions options;
  options.num_classes = 1;
  options.bidirectional_samples = 16;
  const auto violations = validate_configs(configs, options);
  EXPECT_TRUE(mentions(violations, "bidirectional mismatch")) << join(violations);
}

TEST(ShimValidate, RejectsReplicationToSelf) {
  RangeTable table;
  table.add(HashRange{0, kHashSpace, Action::replicate(0)});
  std::vector<ShimConfig> configs(1);
  configs[0].set_table(0, table);

  ConfigValidationOptions options;
  options.num_classes = 1;
  options.bidirectional_samples = 8;
  const auto violations = validate_configs(configs, options);
  EXPECT_TRUE(mentions(violations, "replicates to itself")) << join(violations);
}

TEST(ShimValidate, ContractRejectsOverlappingAdd) {
  // Building an overlapping table is already stopped at the trust boundary
  // by the RangeTable::add contract, with the expression in the diagnostic.
  RangeTable table;
  table.add(HashRange{0, kHashSpace / 2, Action::process()});
  try {
    table.add(HashRange{kHashSpace / 4, kHashSpace, Action::process()});
    FAIL() << "overlapping add must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ascending and non-overlapping"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace nwlb::shim
