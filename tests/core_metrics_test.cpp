// Controller telemetry: every epoch and patch lands in the injected
// obs::Registry as nwlb_controller_* metrics plus one trace event, and the
// degraded/backoff paths are distinguishable from healthy optima.
#include <gtest/gtest.h>

#include <string>

#include "core/controller.h"
#include "obs/metrics.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::core {
namespace {

struct MetricsFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  obs::Registry registry;

  MetricsFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))) {}

  ControllerOptions options() {
    ControllerOptions opts;
    opts.architecture = Architecture::kPathReplicate;
    opts.metrics = &registry;
    return opts;
  }
};

TEST(ControllerMetrics, HealthyEpochsAreCounted) {
  MetricsFixture f;
  Controller controller(f.topology, f.tm, f.options());
  controller.run({.tm = &f.tm});
  controller.run({.tm = &f.tm});
  EXPECT_EQ(f.registry.counter("nwlb_controller_epochs_total").value(), 2u);
  EXPECT_EQ(f.registry.counter("nwlb_controller_epoch_outcomes_total",
                               {{"status", "optimal"}})
                .value(),
            2u);
  EXPECT_EQ(f.registry.counter("nwlb_controller_epochs_degraded_total").value(), 0u);
  // Second epoch reuses the first epoch's basis.
  EXPECT_EQ(f.registry.counter("nwlb_controller_epochs_warm_started_total").value(), 1u);
  EXPECT_GT(f.registry.counter("nwlb_controller_lp_iterations_total").value(), 0u);
  // One trace event per epoch, newest last.
  const auto events = f.registry.trace().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.back().scope, "controller");
  EXPECT_EQ(events.back().name, "epoch");
  EXPECT_NE(events.back().detail.find("status=optimal"), std::string::npos);
}

TEST(ControllerMetrics, BudgetExhaustionCountsDegradedAndBackoff) {
  MetricsFixture f;
  ControllerOptions opts = f.options();
  opts.lp.max_iterations = 1;  // Guaranteed budget exhaustion.
  opts.resolve_backoff_epochs = 2;
  Controller controller(f.topology, f.tm, opts);
  controller.run({.tm = &f.tm});  // Fails, enters backoff.
  controller.run({.tm = &f.tm});  // Served during backoff.
  EXPECT_EQ(f.registry.counter("nwlb_controller_epochs_total").value(), 2u);
  EXPECT_EQ(f.registry.counter("nwlb_controller_epochs_degraded_total").value(), 2u);
  EXPECT_EQ(f.registry.counter("nwlb_controller_epoch_outcomes_total",
                               {{"status", "iteration-limit"}})
                .value(),
            1u);
  EXPECT_EQ(f.registry.counter("nwlb_controller_epoch_outcomes_total",
                               {{"status", "backoff"}})
                .value(),
            1u);
  EXPECT_GT(f.registry.gauge("nwlb_controller_backoff_epochs_remaining").value(), 0.0);
}

TEST(ControllerMetrics, PatchesAreCountedSeparately) {
  MetricsFixture f;
  Controller controller(f.topology, f.tm, f.options());
  controller.run({.tm = &f.tm});
  FailureSet failures;
  failures.down_nodes = {2};
  controller.run({.failures = failures, .force_patch = true});
  EXPECT_EQ(f.registry.counter("nwlb_controller_patches_total").value(), 1u);
  // A force_patch request is tier 1, not an epoch.
  EXPECT_EQ(f.registry.counter("nwlb_controller_epochs_total").value(), 1u);
  const auto events = f.registry.trace().events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back().name, "patch");
}

TEST(ControllerMetrics, TypedReasonsAndGenerationAreExported) {
  MetricsFixture f;
  ControllerOptions opts = f.options();
  opts.lp.max_iterations = 1;  // Guaranteed budget exhaustion.
  Controller controller(f.topology, f.tm, opts);
  controller.run({.tm = &f.tm});
  EXPECT_GE(f.registry
                .counter("nwlb_controller_degraded_reasons_total",
                         {{"reason", "lp_budget_exhausted"}})
                .value(),
            1u);
  EXPECT_EQ(f.registry
                .counter("nwlb_controller_degraded_reasons_total",
                         {{"reason", "no_known_good"}})
                .value(),
            1u);
  // The generation gauge tracks the monotonic bundle counter.
  EXPECT_EQ(f.registry.gauge("nwlb_controller_generation").value(), 1.0);
  controller.run({.tm = &f.tm});
  EXPECT_EQ(f.registry.gauge("nwlb_controller_generation").value(), 2.0);
}

TEST(ControllerMetrics, NullRegistryRecordsNothing) {
  MetricsFixture f;
  Controller controller(f.topology, f.tm, Architecture::kPathReplicate);
  controller.run({.tm = &f.tm});  // Must not crash without a registry.
  EXPECT_EQ(f.registry.size(), 0u);
}

TEST(ControllerMetrics, SolveSecondsHistogramObservesEveryEpoch) {
  MetricsFixture f;
  Controller controller(f.topology, f.tm, f.options());
  controller.run({.tm = &f.tm});
  controller.run({.tm = &f.tm});
  const obs::Snapshot snap = f.registry.snapshot();
  bool found = false;
  for (const obs::Sample& sample : snap.samples) {
    if (sample.name != "nwlb_controller_solve_seconds") continue;
    found = true;
    EXPECT_EQ(sample.kind, obs::Sample::Kind::kHistogram);
    EXPECT_EQ(sample.count, 2u);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nwlb::core
