// Degraded reconfiguration: apply_failures, the LP-free patch, and the
// controller's two-tier failure response with solver budgets.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/patch.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::core {
namespace {

struct FailureFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  Scenario scenario;
  ProblemInput input;

  FailureFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        input(scenario.problem(Architecture::kPathReplicate)) {}
};

/// True when any process share or offload endpoint of `a` puts work on `node`.
bool touches_node(const Assignment& a, int node) {
  for (const auto& shares : a.process)
    for (const ProcessShare& s : shares)
      if (s.node == node && s.fraction > 1e-12) return true;
  for (const auto& offloads : a.offloads)
    for (const Offload& o : offloads)
      if ((o.from == node || o.to == node) && o.fraction > 1e-12) return true;
  return false;
}

TEST(ApplyFailures, MarksNodesAndSaturatesLinks) {
  FailureFixture f;
  EXPECT_FALSE(f.input.any_down());
  FailureSet failures;
  failures.down_nodes = {2, f.input.datacenter_id()};
  failures.failed_links = {0};
  apply_failures(f.input, failures);
  EXPECT_TRUE(f.input.any_down());
  EXPECT_TRUE(f.input.is_down(2));
  EXPECT_TRUE(f.input.is_down(f.input.datacenter_id()));
  EXPECT_FALSE(f.input.is_down(1));
  // A failed link carries no replication budget: background load saturates
  // its capacity.
  EXPECT_DOUBLE_EQ(f.input.background_bytes[0], f.input.link_capacity[0]);
}

TEST(ApplyFailures, FailureSetQueries) {
  FailureSet failures;
  EXPECT_TRUE(failures.empty());
  failures.down_nodes = {3};
  failures.failed_links = {7};
  EXPECT_FALSE(failures.empty());
  EXPECT_TRUE(failures.node_down(3));
  EXPECT_FALSE(failures.node_down(4));
  EXPECT_TRUE(failures.link_failed(7));
  EXPECT_FALSE(failures.link_failed(8));
}

TEST(PatchAssignment, EmptyFailureSetIsIdentity) {
  FailureFixture f;
  const Assignment last = ReplicationLp(f.input).solve();
  const Assignment patched = patch_assignment(f.input, last, FailureSet{});
  ASSERT_EQ(patched.coverage.size(), last.coverage.size());
  for (std::size_t c = 0; c < last.coverage.size(); ++c)
    EXPECT_NEAR(patched.coverage[c], last.coverage[c], 1e-9);
  EXPECT_NEAR(patched.miss_rate, last.miss_rate, 1e-9);
}

TEST(PatchAssignment, RescalesOntoSurvivingSuppliers) {
  FailureFixture f;
  const Assignment last = ReplicationLp(f.input).solve();
  ASSERT_NEAR(last.miss_rate, 0.0, 1e-6);
  const int dc = f.input.datacenter_id();
  ASSERT_TRUE(touches_node(last, dc)) << "fixture must actually use the DC";

  FailureSet failures;
  failures.down_nodes = {dc};
  ProblemInput degraded = f.input;
  apply_failures(degraded, failures);
  const Assignment patched = patch_assignment(degraded, last, failures);

  // Nothing may land on the failed node.
  EXPECT_FALSE(touches_node(patched, dc));
  // Per class: survivors absorb the failed share proportionally, so any
  // class that still has a supplier keeps full coverage; a class whose
  // only supplier died is honestly reported dark.
  ASSERT_EQ(patched.coverage.size(), last.coverage.size());
  for (std::size_t c = 0; c < patched.coverage.size(); ++c) {
    double surviving = 0.0;
    for (const ProcessShare& s : patched.process[c]) surviving += s.fraction;
    for (const Offload& o : patched.offloads[c])
      if (o.direction == nids::Direction::kForward) surviving += o.fraction;
    if (surviving > 1e-9) {
      EXPECT_NEAR(patched.coverage[c], 1.0, 1e-6) << "class " << c;
    }
    EXPECT_LE(patched.coverage[c], 1.0 + 1e-9);
  }
  // Metrics are refreshed against the degraded input.
  EXPECT_GE(patched.miss_rate, 0.0);
  EXPECT_LE(patched.miss_rate, 1.0);
}

TEST(Controller, PatchBeforeAnyEpochThrows) {
  FailureFixture f;
  Controller controller(f.topology, f.tm, Architecture::kPathReplicate);
  FailureSet failures;
  failures.down_nodes = {0};
  EXPECT_THROW(controller.run({.failures = failures, .force_patch = true}),
               std::logic_error);
}

TEST(Controller, RunWithoutTrafficThrows) {
  FailureFixture f;
  Controller controller(f.topology, f.tm, Architecture::kPathReplicate);
  EXPECT_THROW(controller.run(EpochRequest{}), std::invalid_argument);
}

TEST(Controller, PatchIsInstantAndMarkedDegraded) {
  FailureFixture f;
  Controller controller(f.topology, f.tm, Architecture::kPathReplicate);
  const EpochResult healthy = controller.run({.tm = &f.tm});
  EXPECT_FALSE(healthy.degraded);
  EXPECT_TRUE(healthy.degraded_reasons.empty());
  ASSERT_TRUE(controller.last_known_good().has_value());

  FailureSet failures;
  failures.down_nodes = {f.input.datacenter_id()};
  const EpochResult patched =
      controller.run({.failures = failures, .force_patch = true});
  EXPECT_TRUE(patched.patched);
  EXPECT_TRUE(patched.degraded);
  EXPECT_TRUE(patched.has_reason(DegradedReason::kPatch));
  EXPECT_EQ(to_string(patched.degraded_reasons), "patch");
  EXPECT_EQ(patched.bundle.configs.size(),
            static_cast<std::size_t>(f.input.num_pops()));
  // Every emitted bundle advances the generation counter.
  EXPECT_GT(patched.bundle.generation, healthy.bundle.generation);
  EXPECT_FALSE(touches_node(patched.assignment, f.input.datacenter_id()));

  // An empty failure set reinstates the last known-good plan unchanged.
  const EpochResult reinstated = controller.run({.force_patch = true});
  EXPECT_TRUE(reinstated.patched);
  EXPECT_FALSE(reinstated.degraded);
  EXPECT_NEAR(reinstated.assignment.miss_rate,
              controller.last_known_good()->miss_rate, 1e-9);
}

TEST(Controller, ResolvesOverSurvivingTopology) {
  FailureFixture f;
  Controller controller(f.topology, f.tm, Architecture::kPathReplicate);
  controller.run({.tm = &f.tm});

  FailureSet failures;
  failures.down_nodes = {f.input.datacenter_id()};
  EpochResult degraded;
  ASSERT_NO_THROW(degraded = controller.run({.tm = &f.tm, .failures = failures}));
  // The solve itself succeeded (no lp-class reason): the plan routes
  // nothing to the failed mirror, and any residual coverage loss is
  // reported as such rather than failing the epoch.
  EXPECT_FALSE(degraded.has_reason(DegradedReason::kLpBudgetExhausted));
  EXPECT_FALSE(degraded.has_reason(DegradedReason::kLpInfeasible));
  EXPECT_FALSE(degraded.has_reason(DegradedReason::kLpFailed));
  EXPECT_FALSE(touches_node(degraded.assignment, f.input.datacenter_id()));
  if (degraded.assignment.miss_rate > 1e-9) {
    EXPECT_TRUE(degraded.degraded);
    EXPECT_TRUE(degraded.has_reason(DegradedReason::kCoverageLoss));
  }

  // Once the node returns, the next healthy epoch restores the optimum.
  const EpochResult recovered = controller.run({.tm = &f.tm});
  EXPECT_FALSE(recovered.degraded);
  EXPECT_NEAR(recovered.assignment.miss_rate, 0.0, 1e-6);
}

TEST(Controller, BudgetExhaustionNeverAbortsAnEpoch) {
  FailureFixture f;
  ControllerOptions copts;
  copts.architecture = Architecture::kPathReplicate;
  copts.lp.max_iterations = 1;  // Guaranteed exhaustion on this model.
  copts.resolve_backoff_epochs = 2;
  Controller controller(f.topology, f.tm, copts);

  EpochResult result;
  ASSERT_NO_THROW(result = controller.run({.tm = &f.tm}));
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.has_reason(DegradedReason::kLpBudgetExhausted));
  // No prior epoch ever solved, so the fallback chain bottoms out at the
  // LP-free ingress construction and says so.
  EXPECT_TRUE(result.has_reason(DegradedReason::kNoKnownGood));
  EXPECT_FALSE(controller.last_known_good().has_value());
  // The epoch still ships a complete, installable plan.
  EXPECT_EQ(result.bundle.configs.size(),
            static_cast<std::size_t>(f.input.num_pops()));
  EXPECT_FALSE(result.assignment.process.empty());

  // The next epochs back the solver off instead of re-burning the budget.
  EpochResult backed_off;
  ASSERT_NO_THROW(backed_off = controller.run({.tm = &f.tm}));
  EXPECT_TRUE(backed_off.degraded);
  EXPECT_TRUE(backed_off.has_reason(DegradedReason::kResolveBackoff));
  EXPECT_EQ(backed_off.iterations, 0);
}

TEST(Controller, BudgetedEpochStillSolvesWhenBudgetSuffices) {
  FailureFixture f;
  ControllerOptions copts;
  copts.architecture = Architecture::kPathReplicate;
  copts.lp.max_seconds = 30.0;  // Generous: a real deployment budget.
  Controller controller(f.topology, f.tm, copts);
  const EpochResult result = controller.run({.tm = &f.tm});
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(result.degraded_reasons.empty());
  EXPECT_NEAR(result.assignment.miss_rate, 0.0, 1e-6);
}

}  // namespace
}  // namespace nwlb::core
