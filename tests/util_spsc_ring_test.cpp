// util::SpscFrameRing: single-thread edge cases and a two-thread
// producer/consumer stress run (the latter is in the TSan CI filter).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "util/spsc_ring.h"

namespace nwlb::util {
namespace {

struct RingStorage {
  explicit RingStorage(std::size_t slots, std::size_t slot_bytes)
      : bytes(slots * slot_bytes), lengths(slots) {}
  std::vector<std::byte> bytes;
  std::vector<std::uint32_t> lengths;
};

SpscFrameRing make_ring(RingStorage& s, std::size_t slots, std::size_t slot_bytes) {
  return SpscFrameRing({s.bytes.data(), s.bytes.size()},
                       {s.lengths.data(), s.lengths.size()}, slots, slot_bytes);
}

TEST(SpscRing, StartsEmptyAndReportsCapacity) {
  RingStorage s(8, 32);
  SpscFrameRing ring = make_ring(s, 8, 32);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.slot_bytes(), 32u);
  EXPECT_TRUE(ring.front().empty());
}

TEST(SpscRing, PushPopRoundTripsFrames) {
  RingStorage s(4, 16);
  SpscFrameRing ring = make_ring(s, 4, 16);
  for (std::uint8_t v = 1; v <= 3; ++v) {
    auto slot = ring.try_push_slot();
    ASSERT_EQ(slot.size(), 16u);
    std::memset(slot.data(), v, v);  // Frame of v bytes, all equal to v.
    ring.commit(v);
  }
  EXPECT_EQ(ring.size(), 3u);
  for (std::uint8_t v = 1; v <= 3; ++v) {
    auto frame = ring.front();
    ASSERT_EQ(frame.size(), v);
    for (std::byte b : frame) EXPECT_EQ(static_cast<std::uint8_t>(b), v);
    ring.pop();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsPushUntilPop) {
  RingStorage s(2, 8);
  SpscFrameRing ring = make_ring(s, 2, 8);
  ASSERT_FALSE(ring.try_push_slot().empty());
  ring.commit(1);
  ASSERT_FALSE(ring.try_push_slot().empty());
  ring.commit(1);
  EXPECT_TRUE(ring.try_push_slot().empty());  // Full.
  ring.pop();
  EXPECT_FALSE(ring.try_push_slot().empty());  // One slot free again.
}

TEST(SpscRing, WrapAroundPreservesFifoOrder) {
  RingStorage s(4, 8);
  SpscFrameRing ring = make_ring(s, 4, 8);
  // Push/pop far more frames than slots so indices wrap many times.
  std::uint32_t next_push = 0, next_pop = 0;
  while (next_pop < 1000) {
    while (next_push < 1000) {
      auto slot = ring.try_push_slot();
      if (slot.empty()) break;
      std::memcpy(slot.data(), &next_push, sizeof(next_push));
      ring.commit(sizeof(next_push));
      ++next_push;
    }
    auto frame = ring.front();
    ASSERT_EQ(frame.size(), sizeof(std::uint32_t));
    std::uint32_t value = 0;
    std::memcpy(&value, frame.data(), sizeof(value));
    ASSERT_EQ(value, next_pop);
    ring.pop();
    ++next_pop;
  }
}

// Two real threads hammering one ring: every frame arrives exactly once, in
// order, with intact contents.  Named SpscRing so the TSan CI filter runs it.
TEST(SpscRing, TwoThreadProducerConsumerDeliversAllFramesInOrder) {
  constexpr std::uint32_t kFrames = 20000;
  constexpr std::size_t kSlots = 64;
  constexpr std::size_t kSlotBytes = 24;
  RingStorage s(kSlots, kSlotBytes);
  SpscFrameRing ring = make_ring(s, kSlots, kSlotBytes);

  std::uint64_t consumed_checksum = 0;
  std::uint32_t consumed = 0;
  std::thread consumer([&] {
    while (consumed < kFrames) {
      auto frame = ring.front();
      if (frame.empty()) {
        std::this_thread::yield();  // Single-core runners need the producer scheduled.
        continue;
      }
      ASSERT_GE(frame.size(), sizeof(std::uint32_t));
      std::uint32_t value = 0;
      std::memcpy(&value, frame.data(), sizeof(value));
      ASSERT_EQ(value, consumed);  // FIFO, no loss, no duplication.
      // Payload filler must match what the producer wrote.
      for (std::size_t b = sizeof(value); b < frame.size(); ++b)
        consumed_checksum += static_cast<std::uint8_t>(frame[b]);
      ring.pop();
      ++consumed;
    }
  });

  std::uint64_t produced_checksum = 0;
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    std::span<std::byte> slot = ring.try_push_slot();
    while (slot.empty()) {
      std::this_thread::yield();
      slot = ring.try_push_slot();
    }
    std::memcpy(slot.data(), &i, sizeof(i));
    const std::size_t payload = sizeof(i) + (i % (kSlotBytes - sizeof(i) + 1));
    for (std::size_t b = sizeof(i); b < payload; ++b) {
      slot[b] = static_cast<std::byte>((i + b) & 0xff);
      produced_checksum += static_cast<std::uint8_t>(slot[b]);
    }
    ring.commit(payload);
  }
  consumer.join();
  EXPECT_EQ(consumed, kFrames);
  EXPECT_EQ(consumed_checksum, produced_checksum);
}

}  // namespace
}  // namespace nwlb::util
