// util::Arena: alignment, block reuse across reset(), and typed arrays.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.h"

namespace nwlb::util {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;  // nwlb-analyze: allow(reinterpret-cast)
}

TEST(Arena, AllocationsDoNotOverlapAndRespectAlignment) {
  Arena arena(/*block_bytes=*/256);
  std::vector<std::pair<std::byte*, std::size_t>> blocks;
  std::size_t sizes[] = {1, 3, 8, 13, 64, 100, 7};
  std::size_t aligns[] = {1, 2, 8, 4, 64, 16, 1};
  for (std::size_t i = 0; i < 7; ++i) {
    auto* p = static_cast<std::byte*>(arena.allocate(sizes[i], aligns[i]));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned_to(p, aligns[i])) << "allocation " << i;
    std::memset(p, static_cast<int>(i + 1), sizes[i]);
    blocks.emplace_back(p, sizes[i]);
  }
  // Every allocation still holds its fill pattern: nothing overlapped.
  for (std::size_t i = 0; i < blocks.size(); ++i)
    for (std::size_t b = 0; b < blocks[i].second; ++b)
      ASSERT_EQ(static_cast<int>(blocks[i].first[b]), static_cast<int>(i + 1));
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/128);
  void* big = arena.allocate(4096, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(aligned_to(big, 64));
  std::memset(big, 0xab, 4096);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

TEST(Arena, ResetReusesBlocksWithoutNewReservation) {
  Arena arena(/*block_bytes=*/1024);
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t blocks = arena.num_blocks();
  EXPECT_GT(reserved, 0u);
  for (int epoch = 0; epoch < 10; ++epoch) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  }
  // Warm epochs allocate from the kept blocks: the footprint is stable.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_blocks(), blocks);
}

TEST(Arena, MakeArrayZeroInitializesAndAligns) {
  Arena arena;
  auto ints = arena.make_array<std::uint64_t>(1000);
  ASSERT_EQ(ints.size(), 1000u);
  EXPECT_TRUE(aligned_to(ints.data(), alignof(std::uint64_t)));
  for (std::uint64_t v : ints) EXPECT_EQ(v, 0u);
  ints[0] = 42;
  ints[999] = 7;
  auto more = arena.make_array<std::uint32_t>(16);
  EXPECT_EQ(ints[0], 42u);  // Second array did not clobber the first.
  EXPECT_EQ(ints[999], 7u);
  EXPECT_EQ(more.size(), 16u);
  EXPECT_TRUE(arena.make_array<int>(0).empty());
}

TEST(Arena, BytesUsedTracksAllocations) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.allocate(100, 1);
  EXPECT_GE(arena.bytes_used(), 100u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

}  // namespace
}  // namespace nwlb::util
