#include "topo/overlap.h"

#include <gtest/gtest.h>

#include "topo/topology.h"
#include "util/stats.h"

namespace nwlb::topo {
namespace {

TEST(PathOverlap, JaccardBasics) {
  EXPECT_DOUBLE_EQ(path_overlap({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(path_overlap({0, 1, 2}, {2, 1, 0}), 1.0);  // Set semantics.
  EXPECT_DOUBLE_EQ(path_overlap({0, 1}, {2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(path_overlap({0, 1, 2}, {1, 2, 3}), 0.5);  // 2 / 4.
  EXPECT_THROW(path_overlap({}, {1}), std::invalid_argument);
}

TEST(PathOverlap, DuplicateNodesIgnored) {
  EXPECT_DOUBLE_EQ(path_overlap({0, 1, 1, 2}, {0, 1, 2}), 1.0);
}

class AsymmetryTargets : public ::testing::TestWithParam<double> {};

TEST_P(AsymmetryTargets, AchievedOverlapTracksTarget) {
  const double theta = GetParam();
  const auto t = make_internet2();
  const Routing routing(t.graph);
  const AsymmetricRouteGenerator generator(routing);
  nwlb::util::Rng rng(42);

  std::vector<double> achieved;
  for (NodeId a = 0; a < t.graph.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.graph.num_nodes(); ++b) {
      if (a == b) continue;
      const Path rev = generator.reverse_path(a, b, theta, rng);
      ASSERT_FALSE(rev.empty());
      achieved.push_back(generator.achieved_overlap(a, b, rev));
    }
  }
  const double mean_achieved = nwlb::util::mean(achieved);
  // The candidate set is discrete, so allow generous slack; the point is
  // that the achieved overlap moves with (and roughly matches) the target.
  EXPECT_NEAR(mean_achieved, theta, 0.17) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsymmetryTargets,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(AsymmetricRouteGenerator, MonotoneInTheta) {
  const auto t = make_geant();
  const Routing routing(t.graph);
  const AsymmetricRouteGenerator generator(routing);
  nwlb::util::Rng rng(7);
  auto mean_for = [&](double theta) {
    std::vector<double> achieved;
    for (NodeId a = 0; a < 10; ++a)
      for (NodeId b = 10; b < 20; ++b)
        achieved.push_back(generator.achieved_overlap(
            a, b, generator.reverse_path(a, b, theta, rng)));
    return nwlb::util::mean(achieved);
  };
  EXPECT_LT(mean_for(0.1), mean_for(0.9));
}

TEST(AsymmetricRouteGenerator, ReturnsRealPaths) {
  const auto t = make_internet2();
  const Routing routing(t.graph);
  const AsymmetricRouteGenerator generator(routing);
  nwlb::util::Rng rng(3);
  const Path rev = generator.reverse_path(0, 10, 0.5, rng);
  // Every returned path is a real shortest path: consecutive adjacency.
  for (std::size_t i = 0; i + 1 < rev.size(); ++i)
    EXPECT_TRUE(t.graph.has_edge(rev[i], rev[i + 1]));
  EXPECT_THROW(generator.reverse_path(0, 10, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(generator.reverse_path(0, 0, 0.5, rng), std::out_of_range);
}

}  // namespace
}  // namespace nwlb::topo
