// util::ThreadPool: execution, draining, and error propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/thread_pool.h"

namespace nwlb::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 1);
  pool.submit([&counter] { ++counter; });
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 3);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool keeps working afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i)
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 16);
}

TEST(ThreadPool, DefaultWorkersWithinBounds) {
  const int n = ThreadPool::default_workers();
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 8);
  EXPECT_EQ(ThreadPool::default_workers(/*cap=*/2), std::min(2, std::max(1, n)));
}

}  // namespace
}  // namespace nwlb::util
