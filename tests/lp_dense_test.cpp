// Hand-checked LPs for the dense tableau oracle.  Every case here is small
// enough to verify by hand; the property suite (lp_property_test.cpp) then
// uses this oracle to validate the revised simplex at scale.
#include "lp/dense_simplex.h"

#include <gtest/gtest.h>

namespace nwlb::lp {
namespace {

TEST(DenseSimplex, TwoVariableClassic) {
  // min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.  Opt at (1,3): -7.
  Model m;
  const VarId x = m.add_variable(0, 2, -1);
  const VarId y = m.add_variable(0, 3, -2);
  const RowId r = m.add_row(Sense::kLessEqual, 4);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-8);
  EXPECT_NEAR(s.value(x), 1.0, 1e-8);
  EXPECT_NEAR(s.value(y), 3.0, 1e-8);
}

TEST(DenseSimplex, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 3, x,y >= 0.  Opt at (0, 1.5): 1.5.
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 2);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-8);
}

TEST(DenseSimplex, GreaterEqual) {
  // min 3x + y  s.t. x + y >= 2, x >= 0, y >= 0.  Opt (0,2): 2.
  Model m;
  const VarId x = m.add_variable(0, kInf, 3);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kGreaterEqual, 2);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_NEAR(s.value(y), 2.0, 1e-8);
}

TEST(DenseSimplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_variable(0, 1, 0);
  const RowId r = m.add_row(Sense::kGreaterEqual, 5);
  m.add_coefficient(r, x, 1);
  EXPECT_EQ(solve_dense(m).status, Status::kInfeasible);
}

TEST(DenseSimplex, DetectsUnbounded) {
  Model m;
  m.add_variable(0, kInf, -1);  // min -x, x unconstrained above.
  EXPECT_EQ(solve_dense(m).status, Status::kUnbounded);
}

TEST(DenseSimplex, FreeVariable) {
  // min x  s.t. x >= -5 via row (free variable, bounded by constraint).
  Model m;
  const VarId x = m.add_variable(-kInf, kInf, 1);
  const RowId r = m.add_row(Sense::kGreaterEqual, -5);
  m.add_coefficient(r, x, 1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
}

TEST(DenseSimplex, NegativeLowerBound) {
  // min x + y  s.t. x + y >= -3, x in [-2, 2], y in [-2, 2].  Opt -3.
  Model m;
  const VarId x = m.add_variable(-2, 2, 1);
  const VarId y = m.add_variable(-2, 2, 1);
  const RowId r = m.add_row(Sense::kGreaterEqual, -3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-8);
}

TEST(DenseSimplex, UpperBoundOnlyVariable) {
  // min -x with x in (-inf, 4]: optimum 4 via the flip transform.
  Model m;
  const VarId x = m.add_variable(-kInf, 4, -1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.value(x), 4.0, 1e-8);
}

TEST(DenseSimplex, FixedVariable) {
  Model m;
  const VarId x = m.add_variable(2, 2, 5);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kGreaterEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.value(x), 2.0, 1e-8);
  EXPECT_NEAR(s.value(y), 1.0, 1e-8);
  EXPECT_NEAR(s.objective, 11.0, 1e-8);
}

TEST(DenseSimplex, DegenerateVertexTerminates) {
  // Multiple redundant constraints through the optimum; Bland's rule must
  // still terminate.
  Model m;
  const VarId x = m.add_variable(0, kInf, -1);
  const VarId y = m.add_variable(0, kInf, -1);
  for (int i = 0; i < 4; ++i) {
    const RowId r = m.add_row(Sense::kLessEqual, 1);
    m.add_coefficient(r, x, 1);
    m.add_coefficient(r, y, 1);
  }
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-8);
}

TEST(DenseSimplex, RedundantEqualityRows) {
  // x + y = 2 stated twice: phase 1 leaves a zero artificial basic.
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 2);
  for (int i = 0; i < 2; ++i) {
    const RowId r = m.add_row(Sense::kEqual, 2);
    m.add_coefficient(r, x, 1);
    m.add_coefficient(r, y, 1);
  }
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_NEAR(s.value(x), 2.0, 1e-8);
}

TEST(DenseSimplex, CoverageStyleLp) {
  // Mini replication LP shape: two classes, two nodes, min-max load.
  //   min z  s.t. p11 + p12 = 1; p21 + p22 = 1;
  //   load1 = 2*p11 + p21 <= z;  load2 = 2*p12 + p22 <= z.
  // Optimal z = 1.5 by splitting both classes evenly.
  Model m;
  const VarId z = m.add_variable(0, kInf, 1);
  const VarId p11 = m.add_variable(0, 1, 0);
  const VarId p12 = m.add_variable(0, 1, 0);
  const VarId p21 = m.add_variable(0, 1, 0);
  const VarId p22 = m.add_variable(0, 1, 0);
  const RowId c1 = m.add_row(Sense::kEqual, 1);
  m.add_coefficient(c1, p11, 1);
  m.add_coefficient(c1, p12, 1);
  const RowId c2 = m.add_row(Sense::kEqual, 1);
  m.add_coefficient(c2, p21, 1);
  m.add_coefficient(c2, p22, 1);
  const RowId l1 = m.add_row(Sense::kLessEqual, 0);
  m.add_coefficient(l1, p11, 2);
  m.add_coefficient(l1, p21, 1);
  m.add_coefficient(l1, z, -1);
  const RowId l2 = m.add_row(Sense::kLessEqual, 0);
  m.add_coefficient(l2, p12, 2);
  m.add_coefficient(l2, p22, 1);
  m.add_coefficient(l2, z, -1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-8);
}

TEST(DenseSimplex, DualsSatisfyStrongDualityOnStandardForm) {
  // min c'x, Ax >= b, x >= 0 with known optimum; check b'y == objective.
  Model m;
  const VarId x = m.add_variable(0, kInf, 2);
  const VarId y = m.add_variable(0, kInf, 3);
  const RowId r1 = m.add_row(Sense::kGreaterEqual, 4);
  m.add_coefficient(r1, x, 1);
  m.add_coefficient(r1, y, 2);
  const RowId r2 = m.add_row(Sense::kGreaterEqual, 3);
  m.add_coefficient(r2, x, 1);
  m.add_coefficient(r2, y, 1);
  const Solution s = solve_dense(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  ASSERT_EQ(s.duals.size(), 2u);
  EXPECT_NEAR(4 * s.duals[0] + 3 * s.duals[1], s.objective, 1e-6);
}

}  // namespace
}  // namespace nwlb::lp
