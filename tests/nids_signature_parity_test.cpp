// Property tests: the flat-table SignatureEngine is bit-identical to the
// node-based BaselineSignatureEngine on randomized pattern/payload corpora
// (satellite of the data-plane speed PR; the flat engine is only allowed
// to be faster, never different).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "nids/signature.h"
#include "nids/signature_baseline.h"
#include "util/rng.h"

namespace nwlb::nids {
namespace {

std::string random_string(util::Rng& rng, std::size_t min_len, std::size_t max_len,
                          int alphabet) {
  const std::size_t len = min_len + rng() % (max_len - min_len + 1);
  std::string s(len, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng() % static_cast<std::uint64_t>(alphabet));
  return s;
}

void expect_identical(const SignatureEngine& flat, const BaselineSignatureEngine& baseline,
                      std::string_view payload) {
  ASSERT_EQ(flat.count_matches(payload), baseline.count_matches(payload));
  const auto got = flat.scan(payload);
  const auto want = baseline.scan(payload);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].pattern_id, want[i].pattern_id) << "match " << i;
    EXPECT_EQ(got[i].end_offset, want[i].end_offset) << "match " << i;
  }
}

TEST(SignatureParity, DefaultRulesOnCraftedPayloads) {
  const SignatureEngine flat(SignatureEngine::default_rules());
  const BaselineSignatureEngine baseline(SignatureEngine::default_rules());
  EXPECT_EQ(flat.num_states(), baseline.num_states());
  const std::vector<std::string> payloads = {
      "",
      "plain benign text with nothing in it",
      "GET /admin/config.php HTTP/1.1",
      "xxSELECT * FROM usersxxUNION SELECT passwordxx",
      "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",  // Overlapping self-matches.
      std::string("\x90\x90\x90\x90\x90\x90\x90", 7),
      "metasploit meterpreter reverse_tcp bind_shell heap spray",
      std::string(1, '\0') + "%00%00%00%00" + std::string(3, '\0'),
  };
  for (const auto& payload : payloads) expect_identical(flat, baseline, payload);
}

TEST(SignatureParity, RandomizedCorporaSmallAlphabet) {
  // A 3-letter alphabet maximizes overlap: dense fail chains, inherited
  // outputs, multi-pattern hits at one offset — the hard cases for the
  // flattened output ranges.
  util::Rng rng(0xac0ffee);
  for (int round = 0; round < 30; ++round) {
    const int num_patterns = 1 + static_cast<int>(rng() % 12);
    std::vector<std::string> patterns;
    patterns.reserve(static_cast<std::size_t>(num_patterns));
    for (int p = 0; p < num_patterns; ++p)
      patterns.push_back(random_string(rng, 1, 6, 3));
    const SignatureEngine flat(patterns);
    const BaselineSignatureEngine baseline(patterns);
    ASSERT_EQ(flat.num_states(), baseline.num_states());
    for (int t = 0; t < 20; ++t) {
      const std::string payload = random_string(rng, 0, 400, 3);
      expect_identical(flat, baseline, payload);
    }
  }
}

TEST(SignatureParity, RandomizedCorporaFullByteRange) {
  util::Rng rng(0xdecade);
  for (int round = 0; round < 10; ++round) {
    const int num_patterns = 1 + static_cast<int>(rng() % 20);
    std::vector<std::string> patterns;
    for (int p = 0; p < num_patterns; ++p) {
      std::string s(1 + rng() % 10, '\0');
      for (auto& c : s) c = static_cast<char>(rng() & 0xff);
      patterns.push_back(std::move(s));
    }
    const SignatureEngine flat(patterns);
    const BaselineSignatureEngine baseline(patterns);
    for (int t = 0; t < 10; ++t) {
      std::string payload(rng() % 600, '\0');
      for (auto& c : payload) c = static_cast<char>(rng() & 0xff);
      expect_identical(flat, baseline, payload);
      // And payloads stitched from the patterns themselves (guaranteed hits).
      std::string stitched;
      for (int k = 0; k < 5; ++k)
        stitched += patterns[rng() % patterns.size()];
      expect_identical(flat, baseline, stitched);
    }
  }
}

TEST(SignatureParity, DuplicateAndNestedPatterns) {
  // Duplicate ids, substrings, and identical suffixes stress the
  // own-then-fail-chain output ordering.
  const std::vector<std::string> patterns = {"abc", "abc", "bc", "c", "abcabc", "cab"};
  const SignatureEngine flat(patterns);
  const BaselineSignatureEngine baseline(patterns);
  for (const char* payload : {"abcabcabc", "cababc", "ccccc", "xyzabc", "ab"})
    expect_identical(flat, baseline, payload);
}

TEST(SignatureParity, BatchCountsMatchPerPayloadCounts) {
  // The 4-lane interleaved batch must be arithmetic-identical to the
  // single-payload loop (and therefore to the baseline), including uneven
  // tails and remainder lanes.
  util::Rng rng(0xba7c4);
  const SignatureEngine flat(SignatureEngine::default_rules());
  const BaselineSignatureEngine baseline(SignatureEngine::default_rules());
  std::vector<std::string> owned;
  for (int i = 0; i < 37; ++i) {  // Odd count: exercises the <4 remainder.
    std::string payload = random_string(rng, 0, 300, 26);
    if (i % 5 == 0) payload += "metasploit";  // Guarantee some hits.
    if (i % 7 == 0) payload += "DROP TABLE users";
    owned.push_back(std::move(payload));
  }
  std::vector<std::string_view> views(owned.begin(), owned.end());
  std::vector<std::size_t> counts(views.size(), ~std::size_t{0});
  flat.count_matches_batch(views.data(), counts.data(), views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(counts[i], flat.count_matches(views[i])) << "payload " << i;
    EXPECT_EQ(counts[i], baseline.count_matches(views[i])) << "payload " << i;
  }
}

TEST(SignatureParity, RejectsEmptyPattern) {
  EXPECT_THROW(SignatureEngine({"ok", ""}), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::nids
