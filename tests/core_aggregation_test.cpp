// Aggregation formulation (Fig. 9) invariants.
#include <gtest/gtest.h>

#include "core/aggregation_lp.h"
#include "core/scenario.h"
#include "topo/topology.h"
#include "traffic/matrix.h"
#include "util/stats.h"

namespace nwlb::core {
namespace {

struct AggFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  Scenario scenario;

  AggFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}

  ProblemInput problem() { return scenario.problem(Architecture::kPathNoReplicate); }
};

TEST(AggregationLp, FullCoverageAlways) {
  AggFixture f;
  const ProblemInput input = f.problem();
  const Assignment a = AggregationLp(input).solve();
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    double total = 0.0;
    for (const auto& share : a.process[c]) total += share.fraction;
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  EXPECT_NEAR(a.miss_rate, 0.0, 1e-9);
}

TEST(AggregationLp, ZeroBetaMatchesPureLoadBalancing) {
  AggFixture f;
  const ProblemInput input = f.problem();
  AggregationOptions opts;
  opts.beta = 0.0;
  const Assignment a = AggregationLp(input, opts).solve();
  // With no communication pressure this is exactly the on-path min-max LP.
  const Assignment path = f.scenario.solve(Architecture::kPathNoReplicate);
  EXPECT_NEAR(a.load_cost, path.load_cost, 1e-5);
}

TEST(AggregationLp, HugeBetaPinsWorkAtAggregationPoint) {
  AggFixture f;
  const ProblemInput input = f.problem();
  AggregationOptions opts;
  opts.beta = 1e9;
  const Assignment a = AggregationLp(input, opts).solve();
  // All processing collapses to the ingress (distance 0): zero comm cost.
  EXPECT_NEAR(a.comm_cost, 0.0, 1e-3);
  EXPECT_NEAR(a.load_cost, 1.0, 1e-5);  // Equivalent to Ingress-only.
}

TEST(AggregationLp, CommCostDecreasesWithBeta) {
  AggFixture f;
  const ProblemInput input = f.problem();
  double previous_comm = -1.0;
  double previous_load = -1.0;
  bool first = true;
  for (double beta : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    AggregationOptions opts;
    opts.beta = beta;
    const Assignment a = AggregationLp(input, opts).solve();
    if (!first) {
      EXPECT_LE(a.comm_cost, previous_comm + 1e-3) << "beta=" << beta;
      EXPECT_GE(a.load_cost, previous_load - 1e-7) << "beta=" << beta;
    }
    previous_comm = a.comm_cost;
    previous_load = a.load_cost;
    first = false;
  }
}

TEST(AggregationLp, AggregationReducesImbalance) {
  // Fig. 19's claim: max/average load drops when Scan can be distributed.
  AggFixture f;
  const ProblemInput input = f.problem();
  const Assignment ingress = ingress_assignment(input);
  AggregationOptions opts;
  opts.beta = 0.01;
  const Assignment agg = AggregationLp(input, opts).solve();
  auto cpu_loads = [&](const Assignment& a) {
    std::vector<double> out;
    for (const auto& load : a.node_load) out.push_back(load[0]);
    return out;
  };
  const double before = nwlb::util::max_over_mean(cpu_loads(ingress));
  const double after = nwlb::util::max_over_mean(cpu_loads(agg));
  EXPECT_LT(after, before);
}

TEST(AggregationLp, ReportDistances) {
  AggFixture f;
  const ProblemInput input = f.problem();
  const AggregationLp formulation(input);
  for (std::size_t c = 0; c < std::min<std::size_t>(input.classes.size(), 10); ++c) {
    const auto& cls = input.classes[c];
    EXPECT_EQ(formulation.report_distance(static_cast<int>(c), cls.ingress), 0);
    for (topo::NodeId j : cls.fwd_nodes())
      EXPECT_GE(formulation.report_distance(static_cast<int>(c), j), 0);
  }
}

TEST(AggregationLp, FixedAggregationPoint) {
  AggFixture f;
  const ProblemInput input = f.problem();
  AggregationOptions opts;
  opts.fixed_aggregation_point = 6;  // Chicago.
  opts.beta = 1e9;
  const Assignment a = AggregationLp(input, opts).solve();
  // With a fixed faraway aggregator, zero comm is impossible for classes
  // whose path avoids it.
  EXPECT_GT(a.comm_cost, 0.0);
}

TEST(AggregationLp, RejectsBadOptions) {
  AggFixture f;
  const ProblemInput input = f.problem();
  AggregationOptions bad;
  bad.beta = -1.0;
  EXPECT_THROW(AggregationLp(input, bad), std::invalid_argument);
  AggregationOptions bad2;
  bad2.record_bytes = 0.0;
  EXPECT_THROW(AggregationLp(input, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::core
