// Property tests for the compiled flat fast-path tables: FlatConfig must
// agree with the reference RangeTable/ShimConfig lookup on every input —
// random hashes, the extremes of the hash space, and every range edge.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "shim/config.h"
#include "shim/flat_table.h"
#include "shim/shim.h"
#include "util/rng.h"

namespace nwlb::shim {
namespace {

/// Builds a randomized config: a random subset of classes, each with a
/// random partition of the hash space into process/replicate/ignore
/// segments (explicit gaps included), sometimes with distinct per-direction
/// tables.
ShimConfig random_config(nwlb::util::Rng& rng) {
  ShimConfig config;
  const int classes = static_cast<int>(rng.range(1, 40));
  for (int c = 0; c < classes; ++c) {
    if (rng.bernoulli(0.2)) continue;  // Class not handled at this node.
    const bool split_directions = rng.bernoulli(0.3);
    const int num_dirs = split_directions ? 2 : 1;
    for (int d = 0; d < num_dirs; ++d) {
      RangeTable table;
      std::uint64_t cursor = 0;
      while (cursor < kHashSpace) {
        // Random segment length; bias toward both tiny and huge segments.
        const std::uint64_t max_len = kHashSpace - cursor;
        std::uint64_t len = rng.bernoulli(0.3)
                                ? rng.below(1024) + 1
                                : rng.below(max_len) + 1;
        if (len > max_len) len = max_len;
        const double coin = rng.uniform();
        if (coin < 0.4)
          table.add(HashRange{cursor, cursor + len, Action::process()});
        else if (coin < 0.7)
          table.add(HashRange{cursor, cursor + len,
                              Action::replicate(static_cast<int>(rng.below(16)))});
        // else: leave a gap (implicit ignore).
        cursor += len;
      }
      if (split_directions)
        config.set_table(c, d == 0 ? nids::Direction::kForward : nids::Direction::kReverse,
                         table);
      else
        config.set_table(c, table);
    }
  }
  return config;
}

TEST(FlatConfig, MatchesReferenceLookupOnRandomInputs) {
  nwlb::util::Rng rng(0xf1a7);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const ShimConfig config = random_config(rng);
    const FlatConfig flat(config);
    const int max_class = 45;  // Beyond any installed class id.
    for (int i = 0; i < 2500; ++i) {
      const int class_id = static_cast<int>(rng.range(-2, max_class));
      const auto dir =
          rng.bernoulli(0.5) ? nids::Direction::kForward : nids::Direction::kReverse;
      const auto hash = static_cast<std::uint32_t>(rng());
      ASSERT_EQ(flat.lookup(class_id, dir, hash), config.lookup(class_id, dir, hash))
          << "trial=" << trial << " class=" << class_id << " hash=" << hash;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 100000);
}

TEST(FlatConfig, MatchesReferenceAtExtremesAndRangeEdges) {
  nwlb::util::Rng rng(0xed6e);
  for (int trial = 0; trial < 25; ++trial) {
    const ShimConfig config = random_config(rng);
    const FlatConfig flat(config);
    config.for_each_table([&](int class_id, nids::Direction dir, const RangeTable& table) {
      std::vector<std::uint32_t> probes{0u, 0xffffffffu};
      for (const HashRange& range : table.ranges()) {
        probes.push_back(static_cast<std::uint32_t>(range.begin));
        if (range.begin > 0)
          probes.push_back(static_cast<std::uint32_t>(range.begin - 1));
        probes.push_back(static_cast<std::uint32_t>(range.end - 1));
        if (range.end < kHashSpace)
          probes.push_back(static_cast<std::uint32_t>(range.end));
      }
      for (const std::uint32_t hash : probes)
        ASSERT_EQ(flat.lookup(class_id, dir, hash), config.lookup(class_id, dir, hash))
            << "trial=" << trial << " class=" << class_id << " hash=" << hash;
    });
  }
}

TEST(FlatConfig, EmptyAndMissingClassesIgnore) {
  const FlatConfig empty{ShimConfig{}};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.lookup(0, nids::Direction::kForward, 123).kind, Action::Kind::kIgnore);

  ShimConfig config;
  RangeTable table;
  table.add(HashRange{0, kHashSpace, Action::process()});
  config.set_table(7, nids::Direction::kForward, table);
  const FlatConfig flat(config);
  EXPECT_FALSE(flat.empty());
  // Installed class/direction processes; everything else ignores.
  EXPECT_EQ(flat.lookup(7, nids::Direction::kForward, 0).kind, Action::Kind::kProcess);
  EXPECT_EQ(flat.lookup(7, nids::Direction::kReverse, 0).kind, Action::Kind::kIgnore);
  EXPECT_EQ(flat.lookup(6, nids::Direction::kForward, 0).kind, Action::Kind::kIgnore);
  EXPECT_EQ(flat.lookup(-1, nids::Direction::kForward, 0).kind, Action::Kind::kIgnore);
  EXPECT_EQ(flat.lookup(1 << 20, nids::Direction::kForward, 0).kind,
            Action::Kind::kIgnore);
}

TEST(FlatConfig, BatchAgreesWithScalarLookups) {
  nwlb::util::Rng rng(0xba7c);
  const ShimConfig config = random_config(rng);
  const FlatConfig flat(config);
  std::vector<std::uint32_t> hashes(4096);
  for (auto& h : hashes) h = static_cast<std::uint32_t>(rng());
  std::vector<Action> out(hashes.size());
  flat.lookup_batch(3, nids::Direction::kForward, hashes, out);
  for (std::size_t i = 0; i < hashes.size(); ++i)
    ASSERT_EQ(out[i], flat.lookup(3, nids::Direction::kForward, hashes[i]));
}

TEST(Shim, HashedBatchMatchesScalarDecideAndCountsPackets) {
  ShimConfig config;
  RangeTable table;
  table.add(HashRange{0, kHashSpace / 2, Action::process()});
  table.add(HashRange{kHashSpace / 2, kHashSpace, Action::replicate(3)});
  config.set_table(0, table);
  Shim shim(1);
  shim.install(config);  // nwlb-lint: allow(raw-shim-install)

  nwlb::util::Rng rng(5);
  std::vector<nids::FiveTuple> tuples(256);
  for (auto& t : tuples) {
    t.src_ip = static_cast<std::uint32_t>(rng());
    t.dst_ip = static_cast<std::uint32_t>(rng());
    t.src_port = static_cast<std::uint16_t>(rng());
    t.dst_port = static_cast<std::uint16_t>(rng());
    t.protocol = 6;
  }

  ShimStats batch_stats;
  std::vector<Decision> decisions(tuples.size());
  shim.decide_batch(0, nids::Direction::kForward, tuples, decisions, batch_stats);
  EXPECT_EQ(batch_stats.packets_seen, tuples.size());

  ShimStats hashed_stats;
  std::vector<std::uint32_t> hashes(tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) hashes[i] = hash_tuple(tuples[i]);
  std::vector<Action> actions(tuples.size());
  shim.decide_hashed_batch(0, nids::Direction::kForward, hashes, actions, hashed_stats);
  EXPECT_EQ(hashed_stats.packets_seen, tuples.size());

  ShimStats scalar_stats;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const Decision d =
        shim.decide(0, tuples[i], nids::Direction::kForward, scalar_stats);
    ASSERT_EQ(decisions[i].action, d.action);
    ASSERT_EQ(decisions[i].hash, d.hash);
    ASSERT_EQ(actions[i], d.action);
  }
}

}  // namespace
}  // namespace nwlb::shim
