// Trace generation, replay emulation, and LP-vs-simulation agreement.
#include <gtest/gtest.h>

#include "core/aggregation_lp.h"
#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "core/split_lp.h"
#include "sim/replay.h"
#include "sim/scan_split.h"
#include "sim/trace.h"
#include "topo/overlap.h"
#include "topo/topology.h"
#include "traffic/matrix.h"
#include "util/rng.h"

namespace nwlb::sim {
namespace {

struct SimFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;

  SimFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}
};

TEST(TraceGenerator, DeterministicAndClassWeighted) {
  SimFixture f;
  TraceGenerator g1(f.scenario.classes(), {}, 99);
  TraceGenerator g2(f.scenario.classes(), {}, 99);
  const auto a = g1.generate(500);
  const auto b = g2.generate(500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple);
    EXPECT_EQ(a[i].class_index, b[i].class_index);
  }
}

TEST(TraceGenerator, TuplesMatchClassPrefixes) {
  SimFixture f;
  TraceGenerator gen(f.scenario.classes(), {}, 7);
  for (const auto& s : gen.generate(300)) {
    const auto& cls = f.scenario.classes()[static_cast<std::size_t>(s.class_index)];
    EXPECT_EQ(TraceGenerator::pop_of_address(s.tuple.src_ip), cls.ingress);
    EXPECT_EQ(TraceGenerator::pop_of_address(s.tuple.dst_ip), cls.egress);
  }
}

TEST(TraceGenerator, MaliciousPayloadsCarrySignatures) {
  SimFixture f;
  TraceConfig config;
  config.malicious_fraction = 1.0;  // Every session malicious.
  TraceGenerator gen(f.scenario.classes(), config, 3);
  const nids::SignatureEngine engine(nids::SignatureEngine::default_rules());
  int hits = 0;
  for (const auto& s : gen.generate(50)) {
    if (s.scanner) continue;
    const auto pkt = gen.make_packet(s, 0, nids::Direction::kForward);
    if (engine.count_matches(pkt.payload) > 0) ++hits;
  }
  EXPECT_GE(hits, 45);  // A handful of rules exceed tiny payloads.
}

TEST(TraceGenerator, BenignPayloadsAreClean) {
  SimFixture f;
  TraceConfig config;
  config.malicious_fraction = 0.0;
  config.scanners = 0;
  TraceGenerator gen(f.scenario.classes(), config, 4);
  const nids::SignatureEngine engine(nids::SignatureEngine::default_rules());
  for (const auto& s : gen.generate(100)) {
    const auto pkt = gen.make_packet(s, 0, nids::Direction::kForward);
    EXPECT_EQ(engine.count_matches(pkt.payload), 0u);
  }
}

TEST(TraceGenerator, ScannersFanOut) {
  SimFixture f;
  TraceConfig config;
  config.scanners = 2;
  config.scan_fanout = 30;
  TraceGenerator gen(f.scenario.classes(), config, 5);
  const auto sessions = gen.generate(10);
  int probes = 0;
  for (const auto& s : sessions)
    if (s.scanner) ++probes;
  EXPECT_EQ(probes, 60);
}

TEST(ReplaySimulator, SingleOwnerPerPacket) {
  // Under a full-coverage config, every packet is processed exactly once.
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathReplicate);
  const core::Assignment a = core::ReplicationLp(input).solve();
  ReplaySimulator sim(input, core::build_bundle(input, a));
  TraceConfig tc;
  tc.scanners = 0;
  TraceGenerator gen(input.classes, tc, 11);
  const auto sessions = gen.generate(800);
  sim.replay(sessions, gen);
  const ReplayStats stats = sim.stats();
  std::uint64_t processed = 0;
  for (auto p : stats.node_packets) processed += p;
  EXPECT_EQ(processed, stats.packets_replayed);
}

TEST(ReplaySimulator, WorkTracksLpLoads) {
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathReplicate);
  const core::Assignment a = core::ReplicationLp(input).solve();
  ReplaySimulator sim(input, core::build_bundle(input, a));
  TraceConfig tc;
  tc.scanners = 0;
  tc.max_packets_per_direction = 4;
  TraceGenerator gen(input.classes, tc, 13);
  const auto sessions = gen.generate(4000);
  sim.replay(sessions, gen);
  const ReplayStats stats = sim.stats();

  // Compare normalized work against normalized LP loads (same capacity on
  // all PoPs, so comparing raw work is fair after DC scaling).
  std::vector<double> lp_load;
  for (int j = 0; j < input.num_processing_nodes(); ++j) {
    double cap_scale = j == input.datacenter_id() ? input.datacenter.capacity_factor : 1.0;
    lp_load.push_back(a.node_load[static_cast<std::size_t>(j)][0] * cap_scale);
  }
  const double lp_max = *std::max_element(lp_load.begin(), lp_load.end());
  const double work_max =
      *std::max_element(stats.node_work.begin(), stats.node_work.end());
  ASSERT_GT(work_max, 0.0);
  for (std::size_t j = 0; j < lp_load.size(); ++j) {
    const double lp_norm = lp_load[j] / lp_max;
    const double sim_norm = stats.node_work[j] / work_max;
    EXPECT_NEAR(sim_norm, lp_norm, 0.15) << "node " << j;
  }
}

TEST(ReplaySimulator, StatefulCoverageFullUnderSymmetricRouting) {
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathReplicate);
  const core::Assignment a = core::ReplicationLp(input).solve();
  ReplaySimulator sim(input, core::build_bundle(input, a));
  TraceConfig tc;
  tc.scanners = 0;
  TraceGenerator gen(input.classes, tc, 17);
  sim.replay(gen.generate(600), gen);
  EXPECT_NEAR(sim.stats().miss_rate(), 0.0, 1e-9);
}

TEST(ReplaySimulator, AsymmetryCausesMissesOnPathButNotWithDc) {
  SimFixture f;
  core::ProblemInput input = f.scenario.problem(core::Architecture::kPathReplicate);
  const topo::AsymmetricRouteGenerator generator(f.scenario.routing());
  nwlb::util::Rng rng(23);
  // Low overlap: some classes end up with fully disjoint fwd/rev routes,
  // which no on-path node can cover statefully.
  traffic::apply_asymmetry(input.classes, generator, 0.05, rng);

  TraceConfig tc;
  tc.scanners = 0;

  // On-path only (ingress-style restriction): heavy misses.
  core::SplitOptions path_opts;
  path_opts.mode = core::SplitMode::kOnPathOnly;
  const core::Assignment path_assign = core::SplitTrafficLp(input, path_opts).solve();
  ReplaySimulator path_sim(input, core::build_bundle(input, path_assign));
  TraceGenerator gen1(input.classes, tc, 29);
  path_sim.replay(gen1.generate(800), gen1);
  const double path_miss = path_sim.stats().miss_rate();

  // With DC replication: near-zero misses.
  const core::Assignment dc_assign = core::SplitTrafficLp(input).solve();
  ReplaySimulator dc_sim(input, core::build_bundle(input, dc_assign));
  TraceGenerator gen2(input.classes, tc, 29);
  dc_sim.replay(gen2.generate(800), gen2);
  const double dc_miss = dc_sim.stats().miss_rate();

  EXPECT_GT(path_miss, dc_miss);
  // At extreme asymmetry the MaxLinkLoad budget caps how much can reach the
  // DC, so the right check is agreement with the LP's own predictions.
  EXPECT_NEAR(path_miss, path_assign.miss_rate, 0.1);
  EXPECT_NEAR(dc_miss, dc_assign.miss_rate, 0.1);
  EXPECT_LT(dc_assign.miss_rate, path_assign.miss_rate);
}

TEST(ReplaySimulator, SignatureDetectionSurvivesDistribution) {
  // Malicious payloads are detected no matter which node processes them.
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathReplicate);
  const core::Assignment a = core::ReplicationLp(input).solve();
  ReplaySimulator sim(input, core::build_bundle(input, a));
  TraceConfig tc;
  tc.scanners = 0;
  tc.malicious_fraction = 0.5;
  TraceGenerator gen(input.classes, tc, 31);
  const auto sessions = gen.generate(400);
  int malicious = 0;
  for (const auto& s : sessions)
    if (s.malicious) ++malicious;
  sim.replay(sessions, gen);
  // Some signatures are longer than the smallest payloads, so demand a
  // large fraction rather than equality.
  EXPECT_GE(sim.stats().signature_matches,
            static_cast<std::uint64_t>(malicious * 8 / 10));
}

TEST(ScanSplit, AggregationIsSemanticallyEquivalent) {
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathNoReplicate);
  core::AggregationOptions opts;
  opts.beta = 0.01;
  const core::Assignment a = core::AggregationLp(input, opts).solve();
  TraceConfig tc;
  tc.scanners = 3;
  tc.scan_fanout = 25;
  TraceGenerator gen(input.classes, tc, 37);
  const auto sessions = gen.generate(2000);
  const ScanSplitResult result = run_scan_split(input, a, sessions, /*threshold=*/15);
  EXPECT_TRUE(result.equivalent());
  ASSERT_EQ(result.distributed_alerts.size(), 3u);  // Exactly the scanners.
  EXPECT_GT(result.reports_sent, 0u);
  EXPECT_GT(result.report_bytes, 0u);
}

TEST(ScanSplit, CentralizedAndDistributedCountsMatchExactly) {
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathNoReplicate);
  const core::Assignment a = core::AggregationLp(input).solve();
  TraceConfig tc;
  tc.scanners = 1;
  tc.scan_fanout = 40;
  TraceGenerator gen(input.classes, tc, 41);
  const auto sessions = gen.generate(1000);
  const ScanSplitResult result = run_scan_split(input, a, sessions, 0);
  // Threshold 0 => every observed source alerts; full count equality.
  EXPECT_EQ(result.distributed_alerts, result.centralized_alerts);
}

TEST(ScanSplit, IngressPlacementHasZeroCommCost) {
  SimFixture f;
  const core::ProblemInput input = f.scenario.problem(core::Architecture::kPathNoReplicate);
  core::AggregationOptions opts;
  opts.beta = 1e9;  // Everything lands on the ingress.
  const core::Assignment a = core::AggregationLp(input, opts).solve();
  TraceGenerator gen(input.classes, {}, 43);
  const auto sessions = gen.generate(500);
  const ScanSplitResult result = run_scan_split(input, a, sessions, 5);
  EXPECT_NEAR(result.comm_byte_hops, 0.0, 1e-9);
  EXPECT_TRUE(result.equivalent());
}

}  // namespace
}  // namespace nwlb::sim
