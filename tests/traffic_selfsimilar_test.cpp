// Long-range-dependent traffic synthesis: Davies–Harte fGn paths carry
// the Hurst exponent they were asked for, the windowed multiplier process
// is deterministic and unit-mean, scenario shapes (flash crowd, diurnal)
// compose exactly, and the Fig. 15 VariabilityModel stacks on top.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "topo/topology.h"
#include "traffic/matrix.h"
#include "traffic/selfsimilar.h"
#include "traffic/variability.h"

namespace nwlb::traffic {
namespace {

TrafficMatrix internet2_mean() {
  const topo::Topology topology = topo::make_internet2();
  return gravity_matrix(topology.graph, paper_total_sessions(11));
}

double sample_mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double sample_var(const std::vector<double>& xs) {
  const double mean = sample_mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size());
}

double lag1_autocorr(const std::vector<double>& xs) {
  const double mean = sample_mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - mean) * (xs[i] - mean);
    if (i + 1 < xs.size()) num += (xs[i] - mean) * (xs[i + 1] - mean);
  }
  return num / den;
}

// ---- fgn_path --------------------------------------------------------------

TEST(FgnPath, DeterministicFromSeed) {
  const std::vector<double> a = fgn_path(256, 0.8, 1904);
  const std::vector<double> b = fgn_path(256, 0.8, 1904);
  const std::vector<double> c = fgn_path(256, 0.8, 1905);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FgnPath, RejectsOutOfDomainParameters) {
  EXPECT_THROW(fgn_path(0, 0.8, 1), std::invalid_argument);
  EXPECT_THROW(fgn_path(64, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(fgn_path(64, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(fgn_path(64, -0.3, 1), std::invalid_argument);
}

TEST(FgnPath, ZeroMeanUnitVariance) {
  // The increments are N(0, 1) marginally at every H, but long-range
  // dependence slows the ergodic averages: Var[sample mean] = n^{2H-2},
  // so the right tolerance scales as n^{H-1} (at H = 0.9 and n = 16384
  // that is ±0.38 — a ±0.1 band would reject *correct* fGn).  Sample
  // variance is biased low by the same n^{2H-2} term.
  const int n = 16384;
  for (double hurst : {0.5, 0.7, 0.9}) {
    const std::vector<double> path = fgn_path(n, hurst, 42);
    const double mean_sd = std::pow(static_cast<double>(n), hurst - 1.0);
    EXPECT_NEAR(sample_mean(path), 0.0, 4.0 * mean_sd) << "H=" << hurst;
    const double var_bias = std::pow(static_cast<double>(n), 2.0 * hurst - 2.0);
    EXPECT_NEAR(sample_var(path), 1.0 - var_bias, 0.1 + var_bias)
        << "H=" << hurst;
  }
}

TEST(FgnPath, Lag1CorrelationMatchesTheory) {
  // fGn autocovariance at lag 1 is (2^{2H} - 2)/2: exactly 0 for white
  // noise (H = 0.5) and ≈ 0.74 for H = 0.9.
  const std::vector<double> white = fgn_path(16384, 0.5, 7);
  EXPECT_NEAR(lag1_autocorr(white), 0.0, 0.05);
  const std::vector<double> persistent = fgn_path(16384, 0.9, 7);
  const double theory = 0.5 * (std::pow(2.0, 1.8) - 2.0);
  EXPECT_NEAR(lag1_autocorr(persistent), theory, 0.08);
}

// ---- estimate_hurst_rs -----------------------------------------------------

TEST(HurstRs, RecoversTheSynthesizedExponent) {
  // R/S carries real small-sample bias (file comment says ±0.1 on a few
  // thousand points), so assert a generous band plus strict ordering.
  const double h05 = estimate_hurst_rs(fgn_path(8192, 0.5, 1337));
  const double h08 = estimate_hurst_rs(fgn_path(8192, 0.8, 1337));
  const double h09 = estimate_hurst_rs(fgn_path(8192, 0.9, 1337));
  EXPECT_NEAR(h05, 0.5, 0.15);
  EXPECT_NEAR(h08, 0.8, 0.15);
  EXPECT_NEAR(h09, 0.9, 0.15);
  EXPECT_LT(h05, h08);
  EXPECT_LT(h08, h09);
}

TEST(HurstRs, RejectsShortOrDegenerateSeries) {
  const std::vector<double> short_series(63, 0.5);
  EXPECT_THROW(estimate_hurst_rs(short_series), std::invalid_argument);
  const std::vector<double> constant(256, 3.0);
  EXPECT_THROW(estimate_hurst_rs(constant), std::invalid_argument);
}

// ---- SelfSimilarTraffic ----------------------------------------------------

TEST(SelfSimilarTraffic, DeterministicAndUnitMean) {
  const TrafficMatrix mean = internet2_mean();
  SelfSimilarOptions opts;
  opts.hurst = 0.5;  // White: windows are independent, means converge fast.
  opts.sigma = 0.3;
  opts.seed = 1904;
  const int windows = 4096;
  const SelfSimilarTraffic a(mean, windows, opts);
  const SelfSimilarTraffic b(mean, windows, opts);
  // Bit-stable: same options, same windows.
  const TrafficMatrix wa = a.window(17);
  const TrafficMatrix wb = b.window(17);
  for (int i = 0; i < mean.num_nodes(); ++i)
    for (int j = 0; j < mean.num_nodes(); ++j)
      EXPECT_DOUBLE_EQ(wa.volume(i, j), wb.volume(i, j));
  // Unit-mean lognormal mapping: each stream's multipliers average to 1,
  // so the long-run average window reproduces the gravity mean.
  std::vector<double> factors;
  factors.reserve(windows);
  for (int w = 0; w < windows; ++w) factors.push_back(a.multiplier(w, 0, 1));
  EXPECT_NEAR(sample_mean(factors), 1.0, 0.05);
}

TEST(SelfSimilarTraffic, RejectsOutOfDomainOptions) {
  const TrafficMatrix mean = internet2_mean();
  const auto expect_reject = [&](SelfSimilarOptions opts) {
    EXPECT_THROW(SelfSimilarTraffic(mean, 8, opts), std::invalid_argument);
  };
  SelfSimilarOptions opts;
  EXPECT_THROW(SelfSimilarTraffic(mean, 0, opts), std::invalid_argument);
  opts.hurst = 0.4;
  expect_reject(opts);
  opts.hurst = 1.0;
  expect_reject(opts);
  opts = {};
  opts.sigma = -0.1;
  expect_reject(opts);
  opts = {};
  opts.sigma_spread = 1.5;
  expect_reject(opts);
  opts = {};
  opts.shape = ScenarioShape::kFlashCrowd;
  opts.flash_duration = 0;
  expect_reject(opts);
  opts.flash_duration = 4;
  opts.flash_magnitude = 0.0;
  expect_reject(opts);
  opts.flash_magnitude = 3.0;
  opts.flash_ingress = mean.num_nodes();
  expect_reject(opts);
  opts = {};
  opts.shape = ScenarioShape::kDiurnal;
  opts.diurnal_period = 1;
  expect_reject(opts);
  opts.diurnal_period = 24;
  opts.diurnal_amplitude = 1.0;
  expect_reject(opts);

  SelfSimilarOptions good;
  const SelfSimilarTraffic process(mean, 8, good);
  EXPECT_THROW(process.window(-1), std::out_of_range);
  EXPECT_THROW(process.window(8), std::out_of_range);
  EXPECT_THROW(process.multiplier(8, 0, 1), std::out_of_range);
}

TEST(SelfSimilarTraffic, FlashCrowdShapeIsExactWithoutNoise) {
  const TrafficMatrix mean = internet2_mean();
  SelfSimilarOptions opts;
  opts.sigma = 0.0;  // Shapes only: every fGn multiplier is exactly 1.
  opts.shape = ScenarioShape::kFlashCrowd;
  opts.flash_window = 3;
  opts.flash_duration = 2;
  opts.flash_magnitude = 3.5;
  opts.flash_ingress = 1;
  const SelfSimilarTraffic process(mean, 8, opts);
  for (int w = 0; w < 8; ++w) {
    const bool in_span = w >= 3 && w < 5;
    const TrafficMatrix tm = process.window(w);
    for (int i = 0; i < mean.num_nodes(); ++i)
      for (int j = 0; j < mean.num_nodes(); ++j) {
        if (i == j) continue;
        const double expected =
            mean.volume(i, j) * ((in_span && i == 1) ? 3.5 : 1.0);
        EXPECT_DOUBLE_EQ(tm.volume(i, j), expected)
            << "w=" << w << " (" << i << "," << j << ")";
      }
  }
  // flash_ingress = -1 surges every row at once.
  opts.flash_ingress = -1;
  const SelfSimilarTraffic global(mean, 8, opts);
  EXPECT_DOUBLE_EQ(global.window(3).total(), 3.5 * mean.total());
}

TEST(SelfSimilarTraffic, DiurnalSwingTracksTheSinusoid) {
  const TrafficMatrix mean = internet2_mean();
  SelfSimilarOptions opts;
  opts.sigma = 0.0;
  opts.shape = ScenarioShape::kDiurnal;
  opts.diurnal_period = 24;
  opts.diurnal_amplitude = 0.5;
  const SelfSimilarTraffic process(mean, 24, opts);
  // Peak at a quarter period, trough at three quarters, mean at zero.
  EXPECT_NEAR(process.window(0).total(), mean.total(), 1e-9 * mean.total());
  EXPECT_NEAR(process.window(6).total(), 1.5 * mean.total(),
              1e-9 * mean.total());
  EXPECT_NEAR(process.window(18).total(), 0.5 * mean.total(),
              1e-9 * mean.total());
}

TEST(SelfSimilarTraffic, SigmaSpreadMakesCalmAndBurstyRows) {
  const TrafficMatrix mean = internet2_mean();
  SelfSimilarOptions opts;
  opts.sigma = 0.4;
  opts.sigma_spread = 1.0;  // Stream 0 gets sigma 0; the last gets 2·sigma.
  opts.granularity = BurstGranularity::kPerIngress;
  const int windows = 64;
  const SelfSimilarTraffic process(mean, windows, opts);
  const int last = mean.num_nodes() - 1;
  std::vector<double> calm, bursty;
  for (int w = 0; w < windows; ++w) {
    calm.push_back(process.multiplier(w, 0, 1));
    bursty.push_back(process.multiplier(w, last, 0));
  }
  // The calm end of the ramp is exactly multiplier-free...
  for (double x : calm) EXPECT_DOUBLE_EQ(x, 1.0);
  // ...while the bursty end really fluctuates.
  EXPECT_GT(sample_var(bursty), 0.01);
}

TEST(SelfSimilarTraffic, GranularityControlsStreamSharing) {
  const TrafficMatrix mean = internet2_mean();
  SelfSimilarOptions opts;
  opts.sigma = 0.4;
  opts.granularity = BurstGranularity::kGlobal;
  const SelfSimilarTraffic global(mean, 16, opts);
  // One stream scales everything: all pairs share the window factor.
  EXPECT_DOUBLE_EQ(global.multiplier(5, 0, 1), global.multiplier(5, 3, 2));

  opts.granularity = BurstGranularity::kPerClass;
  const SelfSimilarTraffic per_class(mean, 16, opts);
  // Distinct streams per ordered pair: (0,1) and (1,0) move independently.
  EXPECT_NE(per_class.multiplier(5, 0, 1), per_class.multiplier(5, 1, 0));
}

TEST(SelfSimilarTraffic, ComposesWithTheVariabilityModel) {
  const TrafficMatrix mean = internet2_mean();
  const VariabilityModel model(abilene_like_factor_cdf());
  SelfSimilarOptions opts;
  opts.sigma = 0.0;  // Isolate the element noise.
  opts.element_noise = &model;
  const SelfSimilarTraffic a(mean, 8, opts);
  const SelfSimilarTraffic b(mean, 8, opts);
  const TrafficMatrix wa = a.window(2);
  // Deterministic per-window derived seed: two identical processes agree.
  const TrafficMatrix wb = b.window(2);
  bool any_differs = false;
  for (int i = 0; i < mean.num_nodes(); ++i)
    for (int j = 0; j < mean.num_nodes(); ++j) {
      EXPECT_DOUBLE_EQ(wa.volume(i, j), wb.volume(i, j));
      if (i != j && wa.volume(i, j) != mean.volume(i, j)) any_differs = true;
    }
  // The jitter really applied (white in time: windows differ too).
  EXPECT_TRUE(any_differs);
  EXPECT_NE(a.window(3).total(), wa.total());
}

}  // namespace
}  // namespace nwlb::traffic
