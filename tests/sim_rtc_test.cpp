// Run-to-completion replay mode: the arena/SPSC-ring data plane must be
// byte-identical to the classic replay — for any worker count, under
// injected loss, crash/blackhole/link failures, fail-open degradation, and
// mid-stream rollouts, and regardless of ring capacity.  The parallel
// variants also run under ThreadSanitizer in CI to prove the shards share
// no mutable state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "shim/bundle.h"
#include "sim/failure.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::sim {
namespace {

struct RtcFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;
  core::ProblemInput input;
  core::ProblemInput ingress_input;
  shim::ConfigBundle bundle;       // Generation 1 (path-replicate plan).
  shim::ConfigBundle next_bundle;  // Generation 2 (ingress-only plan).

  RtcFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        input(scenario.problem(core::Architecture::kPathReplicate)),
        ingress_input(scenario.problem(core::Architecture::kIngress)),
        bundle(core::build_bundle(input, core::ReplicationLp(input).solve(), 1)),
        next_bundle(core::build_bundle(ingress_input,
                                       core::ReplicationLp(ingress_input).solve(), 2)) {}

  ReplayStats run(const ReplayOptions& opts, int sessions = 900,
                  std::uint64_t seed = 41) const {
    ReplaySimulator sim(input, bundle, opts);
    TraceConfig tc;
    tc.scanners = 4;
    TraceGenerator gen(input.classes, tc, seed);
    sim.replay(gen.generate(sessions), gen);
    return sim.stats();
  }
};

void expect_identical(const ReplayStats& a, const ReplayStats& b) {
  // Exact comparisons, doubles included: every accumulated double is an
  // integer-valued work/byte count, so the modes must agree bit for bit.
  EXPECT_EQ(a.node_work, b.node_work);
  EXPECT_EQ(a.node_packets, b.node_packets);
  EXPECT_EQ(a.link_replicated_bytes, b.link_replicated_bytes);
  EXPECT_EQ(a.sessions_replayed, b.sessions_replayed);
  EXPECT_EQ(a.packets_replayed, b.packets_replayed);
  EXPECT_EQ(a.signature_matches, b.signature_matches);
  EXPECT_EQ(a.tunnel_frames_sent, b.tunnel_frames_sent);
  EXPECT_EQ(a.tunnel_frames_dropped, b.tunnel_frames_dropped);
  EXPECT_EQ(a.tunnel_frames_blackholed, b.tunnel_frames_blackholed);
  EXPECT_EQ(a.tunnel_frames_detected_lost, b.tunnel_frames_detected_lost);
  EXPECT_EQ(a.tunnel_frames_malformed, b.tunnel_frames_malformed);
  EXPECT_EQ(a.crash_skipped_packets, b.crash_skipped_packets);
  EXPECT_EQ(a.fail_open_packets, b.fail_open_packets);
  EXPECT_EQ(a.degraded_skipped_packets, b.degraded_skipped_packets);
  EXPECT_EQ(a.stateful_covered, b.stateful_covered);
  EXPECT_EQ(a.stateful_missed, b.stateful_missed);
  EXPECT_EQ(a.decisions_process, b.decisions_process);
  EXPECT_EQ(a.decisions_replicate, b.decisions_replicate);
  EXPECT_EQ(a.decisions_ignore, b.decisions_ignore);
  EXPECT_EQ(a.mirror_flaps, b.mirror_flaps);
}

TEST(RunToCompletionReplay, SerialMatchesClassicByteForByte) {
  RtcFixture f;
  ReplayOptions classic;
  ReplayOptions rtc;
  rtc.run_to_completion = true;
  const ReplayStats want = f.run(classic);
  const ReplayStats got = f.run(rtc);
  ASSERT_GT(want.packets_replayed, 0u);
  ASSERT_GT(want.tunnel_frames_sent, 0u);
  expect_identical(want, got);
}

TEST(RunToCompletionReplay, ParallelMatchesSerial) {
  RtcFixture f;
  ReplayOptions serial;
  serial.run_to_completion = true;
  ReplayOptions parallel = serial;
  parallel.num_workers = 4;
  expect_identical(f.run(serial), f.run(parallel));
}

TEST(RunToCompletionReplay, TinyRingDrainsInPlaceWithoutDivergence) {
  // A 2-slot ring forces mid-direction drains on every replicated burst;
  // the drain point must not affect any merged quantity.
  RtcFixture f;
  ReplayOptions classic;
  ReplayOptions rtc;
  rtc.run_to_completion = true;
  rtc.rtc_ring_frames = 2;
  expect_identical(f.run(classic), f.run(rtc));
}

TEST(RunToCompletionReplay, MatchesClassicUnderLossFailuresAndFailOpen) {
  RtcFixture f;
  FailureSchedule failures;
  failures.add({FailureKind::kNodeCrash, /*target=*/2, /*begin=*/100, /*end=*/400});
  // Partial blackholes on every node and a few link outages: whichever
  // mirrors the plan actually uses, some frames get eaten.
  for (int node = 0; node < f.input.num_processing_nodes(); ++node)
    failures.add({FailureKind::kMirrorBlackhole, node, /*begin=*/0,
                  /*end=*/FailureEvent::kNever, /*severity=*/0.4});
  for (int link = 0; link < 6; ++link)
    failures.add({FailureKind::kLinkDown, link, /*begin=*/200, /*end=*/700,
                  /*severity=*/0.3});
  ReplayOptions classic;
  classic.replication_loss = 0.25;
  classic.failures = &failures;
  classic.degrade = DegradePolicy::kFailOpen;
  ReplayOptions rtc = classic;
  rtc.run_to_completion = true;
  const ReplayStats want = f.run(classic);
  const ReplayStats got = f.run(rtc);
  ASSERT_GT(want.tunnel_frames_dropped, 0u);
  ASSERT_GT(want.tunnel_frames_blackholed, 0u);
  ASSERT_GT(want.crash_skipped_packets, 0u);
  expect_identical(want, got);
  // And the sharded run-to-completion replay agrees with its own serial.
  ReplayOptions rtc_parallel = rtc;
  rtc_parallel.num_workers = 4;
  expect_identical(got, f.run(rtc_parallel));
}

TEST(RunToCompletionReplay, MidStreamRolloutStaysByteIdentical) {
  RtcFixture f;
  TraceConfig tc;
  tc.scanners = 0;
  const auto run = [&](bool rtc_mode, int workers) {
    ReplayOptions opts;
    opts.run_to_completion = rtc_mode;
    opts.num_workers = workers;
    ReplaySimulator sim(f.input, f.bundle, opts);
    TraceGenerator gen(f.input.classes, tc, /*seed=*/17);
    const auto window1 = gen.generate(300);
    sim.replay(window1, gen);
    sim.install_bundle(f.next_bundle, /*activate_at=*/450);
    const auto window2 = gen.generate(300);
    sim.replay(window2, gen);  // Crosses the activation point mid-window.
    return std::make_pair(sim.stats(), sim.rollout_stats());
  };
  const auto [classic_stats, classic_rollout] = run(false, 1);
  const auto [rtc_stats, rtc_rollout] = run(true, 1);
  const auto [rtc_par_stats, rtc_par_rollout] = run(true, 4);
  ASSERT_GT(classic_rollout.sessions_draining_generation, 0u);
  expect_identical(classic_stats, rtc_stats);
  expect_identical(classic_stats, rtc_par_stats);
  EXPECT_EQ(classic_rollout.active_generation, rtc_rollout.active_generation);
  EXPECT_EQ(classic_rollout.sessions_current_generation,
            rtc_rollout.sessions_current_generation);
  EXPECT_EQ(classic_rollout.sessions_draining_generation,
            rtc_rollout.sessions_draining_generation);
  EXPECT_EQ(classic_rollout.sessions_unassigned, 0u);
  EXPECT_EQ(rtc_par_rollout.sessions_current_generation,
            rtc_rollout.sessions_current_generation);
}

TEST(RunToCompletionReplay, MetricsExportByteIdenticalToClassic) {
  // The strongest end-to-end property: the rendered metric expositions —
  // every counter, gauge, and label — agree byte for byte across modes.
  RtcFixture f;
  const auto exposition = [&](bool rtc_mode) {
    ReplayOptions opts;
    opts.run_to_completion = rtc_mode;
    opts.replication_loss = 0.1;
    ReplaySimulator sim(f.input, f.bundle, opts);
    TraceConfig tc;
    tc.scanners = 4;
    TraceGenerator gen(f.input.classes, tc, /*seed=*/41);
    sim.replay(gen.generate(600), gen);
    obs::Registry registry;
    sim.export_metrics(registry);
    return std::make_pair(obs::prometheus_text(registry.snapshot()),
                          obs::to_json(registry));
  };
  const auto classic = exposition(false);
  const auto rtc = exposition(true);
  EXPECT_FALSE(classic.first.empty());
  EXPECT_EQ(classic.first, rtc.first);
  EXPECT_EQ(classic.second, rtc.second);
}

}  // namespace
}  // namespace nwlb::sim
