// MPS reader/writer: hand-written fixtures plus randomized round-trips.
#include "lp/mps.h"

#include <gtest/gtest.h>

#include "lp/revised_simplex.h"
#include "util/rng.h"

namespace nwlb::lp {
namespace {

TEST(Mps, ParsesHandWrittenFile) {
  const std::string text = R"(* A classic toy LP
NAME TOY
ROWS
 N OBJ
 L cap
 G floor
COLUMNS
    x OBJ -1
    x cap 1
    x floor 1
    y OBJ -2
    y cap 1
RHS
    RHS1 cap 4
    RHS1 floor 1
BOUNDS
 UP BND1 x 2
 UP BND1 y 3
ENDATA
)";
  const Model m = read_mps_string(text);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_rows(), 2);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  // min -x - 2y s.t. x+y<=4, x>=1, x<=2, y<=3 -> x=1,y=3 -> -7.
  EXPECT_NEAR(s.objective, -7.0, 1e-7);
}

TEST(Mps, BoundTypes) {
  const std::string text = R"(NAME B
ROWS
 N OBJ
 L r
COLUMNS
    a OBJ 1
    a r 1
    b OBJ 1
    b r 1
    c OBJ 1
    c r 1
    d OBJ 1
    d r 1
RHS
    RHS1 r 100
BOUNDS
 FX BND1 a 5
 FR BND1 b
 MI BND1 c
 BV BND1 d
ENDATA
)";
  const Model m = read_mps_string(text);
  EXPECT_DOUBLE_EQ(m.lower(VarId{0}), 5.0);
  EXPECT_DOUBLE_EQ(m.upper(VarId{0}), 5.0);
  EXPECT_EQ(m.lower(VarId{1}), -kInf);
  EXPECT_EQ(m.upper(VarId{1}), kInf);
  EXPECT_EQ(m.lower(VarId{2}), -kInf);
  EXPECT_DOUBLE_EQ(m.lower(VarId{3}), 0.0);
  EXPECT_DOUBLE_EQ(m.upper(VarId{3}), 1.0);
}

TEST(Mps, RejectsMalformedInput) {
  EXPECT_THROW(read_mps_string("NAME X\nROWS\n Z bad\nENDATA\n"), std::invalid_argument);
  EXPECT_THROW(read_mps_string("NAME X\nROWS\n N OBJ\nCOLUMNS\n  x nosuchrow 1\nENDATA\n"),
               std::invalid_argument);
  EXPECT_THROW(read_mps_string("NAME X\n"), std::invalid_argument);  // No ENDATA.
  EXPECT_THROW(read_mps_string("junk before sections\nENDATA\n"), std::invalid_argument);
  EXPECT_THROW(read_mps_string("NAME X\nROWS\n N OBJ\nCOLUMNS\n  x OBJ abc\nENDATA\n"),
               std::invalid_argument);
}

TEST(Mps, WriteContainsAllSections) {
  Model m;
  const VarId x = m.add_variable(0, 5, 2, "alpha");
  const RowId r = m.add_row(Sense::kLessEqual, 7, "capacity");
  m.add_coefficient(r, x, 3);
  const std::string text = to_mps(m, "TEST");
  for (const char* needle :
       {"NAME TEST", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA", "alpha", "capacity"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

class MpsRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpsRoundTrip, PreservesOptima) {
  // Random bounded LP -> MPS -> parse -> same optimum.
  nwlb::util::Rng rng(GetParam() * 131);
  Model m;
  const int n = 3 + static_cast<int>(rng.below(10));
  const int k = 1 + static_cast<int>(rng.below(6));
  std::vector<VarId> vars;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-2, 0);
    vars.push_back(m.add_variable(lo, lo + rng.uniform(0.5, 3), rng.uniform(-2, 2)));
  }
  for (int i = 0; i < k; ++i) {
    const RowId r = m.add_row(rng.bernoulli(0.5) ? Sense::kLessEqual : Sense::kGreaterEqual,
                              rng.uniform(-2, 4));
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.5)) m.add_coefficient(r, vars[static_cast<std::size_t>(j)], rng.uniform(-2, 2));
  }
  const Model parsed = read_mps_string(to_mps(m));
  const Solution a = solve_revised(m);
  const Solution b = solve_revised(parsed);
  ASSERT_EQ(a.status, b.status);
  if (a.status == Status::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MpsRoundTrip, ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace nwlb::lp
