// End-to-end integration: for each evaluation topology, run the complete
// pipeline — gravity traffic, scenario assembly, replication LP, validator,
// shim-config compilation, trace replay — and check the cross-layer
// invariants that tie the optimizer to the data plane.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "core/validate.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb {
namespace {

class FullPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(FullPipeline, OptimizeCompileReplay) {
  const topo::Topology topology = topo::topology_by_name(GetParam());
  const auto tm = traffic::gravity_matrix(
      topology.graph, traffic::paper_total_sessions(topology.graph.num_nodes()));
  const core::Scenario scenario(topology, tm);

  // Optimize.
  const core::ProblemInput input = scenario.problem(core::Architecture::kPathReplicate);
  const core::Assignment assignment = core::ReplicationLp(input).solve();
  EXPECT_LT(assignment.load_cost, 0.75) << "replication should beat ingress-only";
  EXPECT_LE(assignment.dc_access_utilization, input.max_link_load + 1e-6);

  // Validate every structural invariant.
  core::ValidationOptions vopts;
  vopts.require_full_coverage = true;
  const auto violations = core::validate_assignment(input, assignment, vopts);
  EXPECT_TRUE(violations.empty()) << violations.front();

  // Compile to a config bundle and replay a small trace.
  const shim::ConfigBundle bundle = core::build_bundle(input, assignment);
  ASSERT_EQ(static_cast<int>(bundle.configs.size()), topology.graph.num_nodes());
  sim::ReplaySimulator simulator(input, bundle);
  sim::TraceConfig tc;
  tc.scanners = 0;
  sim::TraceGenerator generator(input.classes, tc, 8);
  simulator.replay(generator.generate(600), generator);
  const sim::ReplayStats stats = simulator.stats();

  // Every packet processed exactly once; no stateful misses under
  // symmetric routing; the DC does real work whenever offloads exist.
  std::uint64_t processed = 0;
  for (auto p : stats.node_packets) processed += p;
  EXPECT_EQ(processed, stats.packets_replayed);
  EXPECT_NEAR(stats.miss_rate(), 0.0, 1e-9);
  bool any_offload = false;
  for (const auto& offs : assignment.offloads) any_offload |= !offs.empty();
  if (any_offload) {
    EXPECT_GT(stats.node_work.back(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, FullPipeline,
                         ::testing::Values("Internet2", "Geant", "Enterprise", "TiNet"));

}  // namespace
}  // namespace nwlb
