// Assignment validator and the §9 joint replication+aggregation LP.
#include <gtest/gtest.h>

#include "core/joint_lp.h"
#include "core/replication_lp.h"
#include "core/aggregation_lp.h"
#include "core/scenario.h"
#include "core/validate.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::core {
namespace {

struct JointFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  Scenario scenario;

  JointFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}
};

TEST(Validate, AcceptsLpSolutions) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const Assignment a = ReplicationLp(input).solve();
  ValidationOptions opts;
  opts.require_full_coverage = true;
  EXPECT_TRUE(validate_assignment(input, a, opts).empty());
}

TEST(Validate, AcceptsIngress) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kIngress);
  EXPECT_TRUE(validate_assignment(input, ingress_assignment(input)).empty());
}

TEST(Validate, FlagsOffPathProcessing) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathNoReplicate);
  Assignment a = ingress_assignment(input);
  // Move class 0's work to a node not on its path.
  const auto on_path = input.classes[0].fwd_nodes();
  int off_path = -1;
  for (int j = 0; j < input.num_pops(); ++j)
    if (!std::binary_search(on_path.begin(), on_path.end(), j)) off_path = j;
  ASSERT_GE(off_path, 0);
  a.process[0] = {ProcessShare{off_path, 1.0}};
  refresh_metrics(input, a);
  const auto violations = validate_assignment(input, a);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("common path"), std::string::npos);
}

TEST(Validate, FlagsExcessResponsibility) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathNoReplicate);
  Assignment a = ingress_assignment(input);
  a.process[0].push_back(ProcessShare{input.classes[0].egress, 0.5});  // 1.5 total.
  refresh_metrics(input, a);
  const auto violations = validate_assignment(input, a);
  EXPECT_FALSE(violations.empty());
}

TEST(Validate, FlagsForeignMirror) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  Assignment a = ingress_assignment(input);
  // Offload to a PoP that is in nobody's mirror set.
  const auto& cls = input.classes[0];
  int target = -1;
  const auto fwd = cls.fwd_nodes();
  for (int j = 0; j < input.num_pops(); ++j)
    if (!std::binary_search(fwd.begin(), fwd.end(), j)) target = j;
  ASSERT_GE(target, 0);
  a.process[0] = {ProcessShare{cls.ingress, 0.5}};
  a.offloads[0] = {Offload{cls.ingress, target, 0.5, nids::Direction::kForward},
                   Offload{cls.ingress, target, 0.5, nids::Direction::kReverse}};
  refresh_metrics(input, a);
  const auto violations = validate_assignment(input, a);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("mirror set"), std::string::npos);
}

TEST(Validate, FlagsStaleMetrics) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathNoReplicate);
  Assignment a = ingress_assignment(input);
  a.load_cost = 0.123;  // Lie about the load.
  const auto violations = validate_assignment(input, a);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("load_cost"), std::string::npos);
}

TEST(JointLp, BothAnalysesFullyCovered) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const JointLp formulation(input);
  const JointResult result = formulation.solve();
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    double sig = 0.0;
    for (const auto& s : result.signature.process[c]) sig += s.fraction;
    for (const auto& o : result.signature.offloads[c])
      if (o.direction == nids::Direction::kForward) sig += o.fraction;
    EXPECT_NEAR(sig, 1.0, 1e-6);
    double scan = 0.0;
    for (const auto& s : result.scan.process[c]) scan += s.fraction;
    EXPECT_NEAR(scan, 1.0, 1e-6);
  }
  EXPECT_GT(result.load_cost, 0.0);
}

TEST(JointLp, BeatsIndependentOptimization) {
  // The §9 hypothesis: jointly optimizing the two analyses over shared
  // capacity does at least as well as optimizing them independently and
  // summing the loads.
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  JointOptions opts;
  opts.beta = 0.0;  // Pure load comparison.
  const JointResult joint = JointLp(input, opts).solve();

  // Independent: signature via the replication LP, scan via the
  // aggregation LP, each blind to the other's load.
  ProblemInput sig_input = input;
  sig_input.class_scale.assign(input.classes.size(), opts.signature_share);
  const Assignment sig = ReplicationLp(sig_input).solve();
  ProblemInput scan_input = input;
  scan_input.class_scale.assign(input.classes.size(), opts.scan_share);
  AggregationOptions agg_opts;
  agg_opts.beta = 0.0;
  const Assignment scan = AggregationLp(scan_input, agg_opts).solve();

  double independent = 0.0;
  for (int j = 0; j < input.num_processing_nodes(); ++j)
    for (int r = 0; r < nids::kNumResources; ++r)
      independent = std::max(
          independent,
          sig.node_load[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] +
              scan.node_load[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)]);
  EXPECT_LE(joint.load_cost, independent + 1e-6);
}

TEST(JointLp, BetaTradesCommForLoad) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  JointOptions cheap;
  cheap.beta = 0.0;
  JointOptions pricey;
  pricey.beta = 1e6;
  const JointResult a = JointLp(input, cheap).solve();
  const JointResult b = JointLp(input, pricey).solve();
  EXPECT_LE(b.comm_cost, a.comm_cost + 1e-6);
  EXPECT_GE(b.load_cost, a.load_cost - 1e-7);
}

TEST(JointLp, RejectsBadOptions) {
  JointFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  JointOptions bad;
  bad.record_bytes = 0.0;
  EXPECT_THROW(JointLp(input, bad), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::core
