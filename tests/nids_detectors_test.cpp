// Scan detector, session tracker, resource model, and NidsNode tests.
#include <gtest/gtest.h>

#include "nids/node.h"
#include "nids/resources.h"
#include "nids/scan.h"
#include "nids/session.h"

namespace nwlb::nids {
namespace {

TEST(ScanDetector, CountsDistinctDestinations) {
  ScanDetector d;
  d.observe(1, 100);
  d.observe(1, 101);
  d.observe(1, 100);  // Duplicate: no double count.
  d.observe(2, 100);
  const auto report = d.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].source, 1u);
  EXPECT_EQ(report[0].distinct_destinations, 2u);
  EXPECT_EQ(report[1].source, 2u);
  EXPECT_EQ(report[1].distinct_destinations, 1u);
  EXPECT_EQ(d.work_units(), 4u);
}

TEST(ScanDetector, ThresholdAlerts) {
  ScanDetector d;
  for (std::uint32_t k = 0; k < 20; ++k) d.observe(7, 1000 + k);
  d.observe(8, 1);
  EXPECT_EQ(d.alerts(10).size(), 1u);
  EXPECT_EQ(d.alerts(10)[0].source, 7u);
  EXPECT_EQ(d.alerts(0).size(), 2u);   // Everyone contacts > 0 destinations.
  EXPECT_EQ(d.alerts(25).size(), 0u);
}

TEST(ScanDetector, ClearResets) {
  ScanDetector d;
  d.observe(1, 2);
  d.clear();
  EXPECT_EQ(d.num_sources(), 0u);
  EXPECT_TRUE(d.report().empty());
}

TEST(SessionTracker, CoverageNeedsBothDirections) {
  SessionTracker t;
  t.observe(1, Direction::kForward);
  t.observe(2, Direction::kForward);
  t.observe(2, Direction::kReverse);
  EXPECT_EQ(t.covered_sessions(), 1u);
  EXPECT_EQ(t.half_open_sessions(), 1u);
  EXPECT_TRUE(t.is_covered(2));
  EXPECT_FALSE(t.is_covered(1));
  EXPECT_FALSE(t.is_covered(99));
  EXPECT_EQ(t.covered_ids(), (std::vector<std::uint64_t>{2}));
}

TEST(SessionTracker, RepeatObservationsIdempotent) {
  SessionTracker t;
  for (int i = 0; i < 5; ++i) t.observe(1, Direction::kForward);
  EXPECT_EQ(t.covered_sessions(), 0u);
  t.observe(1, Direction::kReverse);
  EXPECT_EQ(t.covered_sessions(), 1u);
  EXPECT_EQ(t.work_units(), 6u);
}

TEST(Resources, FootprintAndCapacities) {
  Footprint f;
  f.set(Resource::kCpu, 2.5);
  EXPECT_DOUBLE_EQ(f.on(Resource::kCpu), 2.5);
  EXPECT_THROW(f.set(Resource::kCpu, -1.0), std::invalid_argument);

  NodeCapacities caps(3, 100.0);
  EXPECT_EQ(caps.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(caps.of(1, Resource::kCpu), 100.0);
  caps.scale_node(2, 10.0);
  EXPECT_DOUBLE_EQ(caps.of(2, Resource::kCpu), 1000.0);
  caps.set(0, Resource::kMemory, 7.0);
  EXPECT_DOUBLE_EQ(caps.of(0, Resource::kMemory), 7.0);
  EXPECT_THROW(caps.set(0, Resource::kCpu, 0.0), std::invalid_argument);
  EXPECT_THROW(NodeCapacities(0, 1.0), std::invalid_argument);
}

TEST(FiveTuple, CanonicalIsBidirectional) {
  FiveTuple t{0x0a000001, 0x0a000002, 4444, 80, 6};
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
  EXPECT_TRUE(t.canonical().is_canonical());
  // Canonical of an already-canonical tuple is itself.
  EXPECT_EQ(t.canonical().canonical(), t.canonical());
}

TEST(FiveTuple, CanonicalTieBreaksOnPort) {
  FiveTuple t{5, 5, 9000, 80, 6};
  const FiveTuple c = t.canonical();
  EXPECT_LE(c.src_port, c.dst_port);
  EXPECT_EQ(c, t.reversed().canonical());
}

TEST(NidsNode, ProcessAccumulatesWorkAndState) {
  NidsNode node("test", {"evil"});
  Packet p;
  p.tuple = FiveTuple{1, 2, 1234, 80, 6};
  p.session_id = 42;
  p.direction = Direction::kForward;
  p.payload = "very evil payload";
  EXPECT_EQ(node.process(p), 1u);
  EXPECT_GT(node.work_units(), 0.0);
  EXPECT_EQ(node.packets_processed(), 1u);
  EXPECT_EQ(node.scan_detector().num_sources(), 1u);
  EXPECT_FALSE(node.session_tracker().is_covered(42));

  Packet r = p;
  r.tuple = p.tuple.reversed();
  r.direction = Direction::kReverse;
  r.payload = "ack";
  node.process(r);
  EXPECT_TRUE(node.session_tracker().is_covered(42));
  // Reverse packet attributed to the initiator: still a single source.
  EXPECT_EQ(node.scan_detector().num_sources(), 1u);
}

TEST(NidsNode, WorkScalesWithPayload) {
  NidsNode node("t");
  Packet small, big;
  small.tuple = big.tuple = FiveTuple{1, 2, 3, 4, 6};
  small.payload.assign(10, 'a');
  big.payload.assign(1000, 'a');
  node.process(small);
  const double w1 = node.work_units();
  node.process(big);
  const double w2 = node.work_units() - w1;
  EXPECT_GT(w2, w1);
}

}  // namespace
}  // namespace nwlb::nids
