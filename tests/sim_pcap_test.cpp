// Pcap export/import round-trips and header correctness.
#include "sim/pcap.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::sim {
namespace {

nids::Packet tcp_packet() {
  nids::Packet p;
  p.tuple = nids::FiveTuple{0x0a000001, 0x0a010002, 44321, 80, 6};
  p.payload = "GET /index.html HTTP/1.1";
  return p;
}

TEST(Pcap, RoundTripTcp) {
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  const nids::Packet original = tcp_packet();
  writer.write(original, 1234, 567);
  EXPECT_EQ(writer.packets_written(), 1u);

  std::istringstream in(out.str(), std::ios::binary);
  const auto packets = read_pcap(in);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].tuple, original.tuple);
  EXPECT_EQ(packets[0].payload, original.payload);
}

TEST(Pcap, RoundTripUdp) {
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  nids::Packet p = tcp_packet();
  p.tuple.protocol = 17;
  p.tuple.dst_port = 53;
  p.payload = "dns query";
  writer.write(p);
  std::istringstream in(out.str(), std::ios::binary);
  const auto packets = read_pcap(in);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].tuple, p.tuple);
  EXPECT_EQ(packets[0].payload, p.payload);
}

TEST(Pcap, Ipv4ChecksumKnownVector) {
  // RFC 1071 style check: a header whose checksum field is zero, then
  // verifying that inserting the computed checksum makes the sum 0xffff.
  std::uint8_t header[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                             0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  const std::uint16_t checksum = ipv4_checksum(header, 20);
  EXPECT_EQ(checksum, 0xb861);  // The classic Wikipedia example datagram.
}

TEST(Pcap, GeneratedTraceRoundTrip) {
  const auto topology = topo::make_internet2();
  const auto tm = traffic::gravity_matrix(topology.graph, 1e5);
  const core::Scenario scenario(topology, tm);
  TraceGenerator generator(scenario.classes(), {}, 7);
  const auto sessions = generator.generate(50);

  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  std::size_t written = 0;
  for (const auto& s : sessions) {
    for (int k = 0; k < s.fwd_packets; ++k) {
      writer.write(generator.make_packet(s, k, nids::Direction::kForward));
      ++written;
    }
  }
  std::istringstream in(out.str(), std::ios::binary);
  const auto packets = read_pcap(in);
  ASSERT_EQ(packets.size(), written);
  // Spot-check payload integrity on the first packet of the first session.
  const auto expected = generator.make_packet(sessions[0], 0, nids::Direction::kForward);
  EXPECT_EQ(packets[0].payload, expected.payload);
  EXPECT_EQ(packets[0].tuple, expected.tuple);
}

TEST(Pcap, RejectsMalformedCaptures) {
  std::istringstream bad_magic(std::string("\x01\x02\x03\x04more"), std::ios::binary);
  EXPECT_THROW(read_pcap(bad_magic), std::invalid_argument);

  // Valid header, truncated packet record.
  std::ostringstream out(std::ios::binary);
  PcapWriter writer(out);
  writer.write(tcp_packet());
  std::string data = out.str();
  data.resize(data.size() - 5);
  std::istringstream truncated(data, std::ios::binary);
  EXPECT_THROW(read_pcap(truncated), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::sim
