// Direct tests of the revised simplex on hand-checked LPs, plus warm-start
// behaviour.  Scale cross-validation lives in lp_property_test.cpp.
#include "lp/revised_simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nwlb::lp {
namespace {

TEST(RevisedSimplex, TwoVariableClassic) {
  Model m;
  const VarId x = m.add_variable(0, 2, -1);
  const VarId y = m.add_variable(0, 3, -2);
  const RowId r = m.add_row(Sense::kLessEqual, 4);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-7);
  EXPECT_NEAR(s.value(x), 1.0, 1e-7);
  EXPECT_NEAR(s.value(y), 3.0, 1e-7);
}

TEST(RevisedSimplex, EqualityNeedsPhase1) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 2);
  // With the crash disabled the equality row's fixed logical starts basic
  // and infeasible, so phase 1 must run.
  Options opt;
  opt.crash = false;
  const Solution s = solve_revised(m, opt);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-7);
  EXPECT_GT(s.phase1_iterations, 0);
}

TEST(RevisedSimplex, CrashBasisSkipsPhase1OnEqualityRows) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 2);
  const Solution s = solve_revised(m);  // Crash on by default.
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-7);
  // The crash seats y (largest |coef| in the equality row) basic at 1.5,
  // which is already feasible: no phase-1 pivots at all.
  EXPECT_EQ(s.phase1_iterations, 0);
}

TEST(RevisedSimplex, GreaterEqualNeedsPhase1) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 3);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kGreaterEqual, 2);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(RevisedSimplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_variable(0, 1, 0);
  const RowId r = m.add_row(Sense::kGreaterEqual, 5);
  m.add_coefficient(r, x, 1);
  EXPECT_EQ(solve_revised(m).status, Status::kInfeasible);
}

TEST(RevisedSimplex, DetectsInfeasibleContradiction) {
  Model m;
  const VarId x = m.add_variable(-kInf, kInf, 0);
  const RowId a = m.add_row(Sense::kLessEqual, 1);
  m.add_coefficient(a, x, 1);
  const RowId b = m.add_row(Sense::kGreaterEqual, 2);
  m.add_coefficient(b, x, 1);
  EXPECT_EQ(solve_revised(m).status, Status::kInfeasible);
}

TEST(RevisedSimplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_variable(0, kInf, -1);
  const VarId y = m.add_variable(0, kInf, 0);
  const RowId r = m.add_row(Sense::kLessEqual, 10);
  m.add_coefficient(r, y, 1);  // x does not appear in any row.
  (void)x;
  EXPECT_EQ(solve_revised(m).status, Status::kUnbounded);
}

TEST(RevisedSimplex, FreeVariableOptimum) {
  Model m;
  const VarId x = m.add_variable(-kInf, kInf, 1);
  const RowId r = m.add_row(Sense::kGreaterEqual, -5);
  m.add_coefficient(r, x, 1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-7);
}

TEST(RevisedSimplex, BoundFlipPath) {
  // Optimal solution sits at upper bounds; reachable purely by bound flips.
  Model m;
  const VarId x = m.add_variable(0, 2, -1);
  const VarId y = m.add_variable(0, 3, -1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-7);
  EXPECT_NEAR(s.value(x), 2.0, 1e-9);
  EXPECT_NEAR(s.value(y), 3.0, 1e-9);
}

TEST(RevisedSimplex, MinMaxLoadShape) {
  // Same coverage-style LP as the dense test; exercises equality + linked
  // inequality rows, the exact shape of the replication formulation.
  Model m;
  const VarId z = m.add_variable(0, kInf, 1);
  const VarId p11 = m.add_variable(0, 1, 0);
  const VarId p12 = m.add_variable(0, 1, 0);
  const VarId p21 = m.add_variable(0, 1, 0);
  const VarId p22 = m.add_variable(0, 1, 0);
  const RowId c1 = m.add_row(Sense::kEqual, 1);
  m.add_coefficient(c1, p11, 1);
  m.add_coefficient(c1, p12, 1);
  const RowId c2 = m.add_row(Sense::kEqual, 1);
  m.add_coefficient(c2, p21, 1);
  m.add_coefficient(c2, p22, 1);
  const RowId l1 = m.add_row(Sense::kLessEqual, 0);
  m.add_coefficient(l1, p11, 2);
  m.add_coefficient(l1, p21, 1);
  m.add_coefficient(l1, z, -1);
  const RowId l2 = m.add_row(Sense::kLessEqual, 0);
  m.add_coefficient(l2, p12, 2);
  m.add_coefficient(l2, p22, 1);
  m.add_coefficient(l2, z, -1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-7);
}

TEST(RevisedSimplex, WarmStartReducesIterations) {
  // Build a moderately sized random-ish LP, solve cold, then re-solve a
  // slightly perturbed copy warm: must reach the same optimum, cheaper.
  nwlb::util::Rng rng(77);
  const int n = 60, k = 25;
  auto build = [&](double jitter) {
    Model m;
    nwlb::util::Rng local(7);
    std::vector<VarId> xs;
    for (int j = 0; j < n; ++j)
      xs.push_back(m.add_variable(0, 1, local.uniform(-1, 1) + jitter * 0.01));
    for (int i = 0; i < k; ++i) {
      const RowId r = m.add_row(Sense::kLessEqual, 3.0);
      for (int j = 0; j < n; ++j)
        if (local.bernoulli(0.2)) m.add_coefficient(r, xs[static_cast<std::size_t>(j)], local.uniform(0.1, 2.0));
    }
    return m;
  };
  const Model cold_model = build(0.0);
  const Solution cold = solve_revised(cold_model);
  ASSERT_EQ(cold.status, Status::kOptimal);

  const Model warm_model = build(1.0);
  const Solution warm = solve_revised(warm_model, {}, &cold.basis);
  ASSERT_EQ(warm.status, Status::kOptimal);
  const Solution rewarmed_cold = solve_revised(warm_model);
  EXPECT_NEAR(warm.objective, rewarmed_cold.objective, 1e-6);
  EXPECT_LE(warm.iterations + warm.phase1_iterations,
            rewarmed_cold.iterations + rewarmed_cold.phase1_iterations);
}

TEST(RevisedSimplex, WarmStartWithWrongShapeFallsBack) {
  Model m;
  const VarId x = m.add_variable(0, 1, -1);
  (void)x;
  Basis bogus;
  bogus.basic = {0, 1, 2};  // Wrong row count.
  bogus.nonbasic_state = {NonbasicState::kAtLower};
  const Solution s = solve_revised(m, {}, &bogus);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(RevisedSimplex, TimeLimitReported) {
  // A sub-nanosecond wall-clock budget expires before the first iteration
  // completes; the solver must report kTimeLimit, not spin or throw.
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 2);
  Options opt;
  opt.max_seconds = 1e-12;
  EXPECT_EQ(solve_revised(m, opt).status, Status::kTimeLimit);
  EXPECT_THROW(solve_revised(m, Options{.max_seconds = -1.0}), std::exception);
}

TEST(RevisedSimplex, IterationLimitReported) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kEqual, 3);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 2);
  Options opt;
  opt.max_iterations = 0;
  EXPECT_EQ(solve_revised(m, opt).status, Status::kIterationLimit);
}

TEST(RevisedSimplex, DualsReturnedForOptimal) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 2);
  const RowId r = m.add_row(Sense::kGreaterEqual, 4);
  m.add_coefficient(r, x, 1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  ASSERT_EQ(s.duals.size(), 1u);
  // Dual of the binding >= row under min 2x, x >= 4 is 2.
  EXPECT_NEAR(s.duals[0], 2.0, 1e-6);
}

TEST(RevisedSimplex, EmptyObjectiveFeasibilityProblem) {
  Model m;
  const VarId x = m.add_variable(0, 10, 0);
  const RowId r = m.add_row(Sense::kEqual, 7);
  m.add_coefficient(r, x, 1);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.value(x), 7.0, 1e-7);
}

}  // namespace
}  // namespace nwlb::lp
