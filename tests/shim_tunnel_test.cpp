// Tunnel framing: encapsulation round-trips, loss accounting, validation.
#include "shim/tunnel.h"

#include <gtest/gtest.h>

namespace nwlb::shim {
namespace {

nids::Packet sample_packet() {
  nids::Packet p;
  p.tuple = nids::FiveTuple{0x0a010001, 0x0a020002, 40000, 443, 6};
  p.direction = nids::Direction::kReverse;
  p.session_id = 0x1122334455667788ULL;
  p.payload = "GET / HTTP/1.1\r\n\r\n";
  return p;
}

TEST(Tunnel, RoundTripPreservesEverything) {
  TunnelSender sender(3, 9);
  TunnelReceiver receiver(9);
  const nids::Packet original = sample_packet();
  const nids::Packet decoded = receiver.decapsulate(sender.encapsulate(original));
  EXPECT_EQ(decoded.tuple, original.tuple);
  EXPECT_EQ(decoded.direction, original.direction);
  EXPECT_EQ(decoded.session_id, original.session_id);
  EXPECT_EQ(decoded.payload, original.payload);
  EXPECT_EQ(receiver.packets_received(), 1u);
  EXPECT_EQ(receiver.packets_lost(), 0u);
}

TEST(Tunnel, EmptyPayload) {
  TunnelSender sender(0, 1);
  TunnelReceiver receiver(1);
  nids::Packet p = sample_packet();
  p.payload.clear();
  const nids::Packet decoded = receiver.decapsulate(sender.encapsulate(p));
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(Tunnel, SequenceGapDetection) {
  TunnelSender sender(1, 2);
  TunnelReceiver receiver(2);
  const nids::Packet p = sample_packet();
  const auto f0 = sender.encapsulate(p);
  const auto f1 = sender.encapsulate(p);
  const auto f2 = sender.encapsulate(p);
  receiver.decapsulate(f0);
  receiver.decapsulate(f2);  // f1 lost in transit.
  EXPECT_EQ(receiver.packets_received(), 2u);
  EXPECT_EQ(receiver.packets_lost(), 1u);
  (void)f1;
}

TEST(Tunnel, PerSenderSequences) {
  TunnelReceiver receiver(5);
  TunnelSender a(1, 5), b(2, 5);
  const nids::Packet p = sample_packet();
  receiver.decapsulate(a.encapsulate(p));
  receiver.decapsulate(b.encapsulate(p));
  receiver.decapsulate(a.encapsulate(p));
  EXPECT_EQ(receiver.packets_lost(), 0u);
}

TEST(Tunnel, RejectsMalformedFrames) {
  TunnelSender sender(1, 2);
  TunnelReceiver receiver(2);
  auto frame = sender.encapsulate(sample_packet());
  // Wrong recipient.
  TunnelReceiver other(3);
  EXPECT_THROW(other.decapsulate(frame), std::invalid_argument);
  // Corrupted magic.
  auto bad = frame;
  bad[0] = static_cast<std::byte>(0);
  EXPECT_THROW(receiver.decapsulate(bad), std::invalid_argument);
  // Truncated.
  frame.resize(frame.size() - 3);
  EXPECT_THROW(receiver.decapsulate(frame), std::invalid_argument);
  EXPECT_THROW(TunnelSender(4, 4), std::invalid_argument);
}

TEST(Tunnel, TryDecapsulateRoundTrips) {
  TunnelSender sender(3, 9);
  TunnelReceiver receiver(9);
  const nids::Packet original = sample_packet();
  const auto decoded = receiver.try_decapsulate(sender.encapsulate(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tuple, original.tuple);
  EXPECT_EQ(decoded->direction, original.direction);
  EXPECT_EQ(decoded->session_id, original.session_id);
  EXPECT_EQ(decoded->payload, original.payload);
  EXPECT_EQ(receiver.packets_received(), 1u);
  EXPECT_EQ(receiver.frames_malformed(), 0u);
}

TEST(Tunnel, TryDecapsulateCountsMalformedInsteadOfThrowing) {
  TunnelSender sender(1, 2);
  TunnelReceiver receiver(2);
  const auto frame = sender.encapsulate(sample_packet());

  // Wrong recipient.
  TunnelReceiver other(3);
  EXPECT_FALSE(other.try_decapsulate(frame).has_value());
  EXPECT_EQ(other.frames_malformed(), 1u);

  // Corrupted magic.
  auto bad = frame;
  bad[0] = static_cast<std::byte>(0);
  EXPECT_FALSE(receiver.try_decapsulate(bad).has_value());

  // Truncated below the header size.
  auto truncated = frame;
  truncated.resize(3);
  EXPECT_FALSE(receiver.try_decapsulate(truncated).has_value());

  // Payload length field disagreeing with the frame size.
  auto short_payload = frame;
  short_payload.resize(short_payload.size() - 2);
  EXPECT_FALSE(receiver.try_decapsulate(short_payload).has_value());

  EXPECT_EQ(receiver.frames_malformed(), 3u);
  // Malformed frames never perturb the sequence/loss accounting: a good
  // frame after the garbage still arrives loss-free.
  EXPECT_EQ(receiver.packets_received(), 0u);
  ASSERT_TRUE(receiver.try_decapsulate(frame).has_value());
  EXPECT_EQ(receiver.packets_received(), 1u);
  EXPECT_EQ(receiver.packets_lost(), 0u);
}

TEST(Tunnel, ByteAccounting) {
  TunnelSender sender(1, 2);
  const auto frame = sender.encapsulate(sample_packet());
  EXPECT_EQ(sender.bytes_sent(), frame.size());
  EXPECT_EQ(sender.packets_sent(), 1u);
  EXPECT_EQ(sender.remote_node(), 2);
}

}  // namespace
}  // namespace nwlb::shim
