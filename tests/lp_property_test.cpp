// Property-based cross-validation: random LPs solved by both the dense
// tableau oracle and the sparse revised simplex must agree on status and,
// when optimal, on the objective value.  Parameterized over seeds so each
// seed is an independent ctest case.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/dense_simplex.h"
#include "lp/revised_simplex.h"
#include "util/rng.h"

namespace nwlb::lp {
namespace {

using nwlb::util::Rng;

struct GeneratedLp {
  Model model;
  bool feasible_by_construction = false;
};

// Generates a random LP. With probability ~0.8 it is feasible by
// construction (rhs derived from a random interior point); otherwise the
// rhs is random and any status can occur.
GeneratedLp generate(std::uint64_t seed) {
  Rng rng(seed);
  GeneratedLp g;
  const int n = 2 + static_cast<int>(rng.below(18));
  const int m = 1 + static_cast<int>(rng.below(12));
  std::vector<VarId> vars;
  std::vector<double> point;
  for (int j = 0; j < n; ++j) {
    double lo = 0.0, hi = kInf;
    const double kind = rng.uniform();
    if (kind < 0.25) {
      lo = rng.uniform(-3, 0);
      hi = lo + rng.uniform(0.5, 4.0);
    } else if (kind < 0.5) {
      lo = 0.0;
      hi = rng.uniform(0.5, 4.0);
    } else if (kind < 0.6) {
      lo = -kInf;
      hi = rng.uniform(-1, 3);
    }  // Else [0, inf).
    const double cost = rng.uniform(-2, 2);
    vars.push_back(g.model.add_variable(lo, hi, cost));
    // An interior-ish reference point within bounds.
    double p = 0.0;
    if (std::isfinite(lo) && std::isfinite(hi)) {
      p = lo + 0.5 * (hi - lo);
    } else if (std::isfinite(lo)) {
      p = lo + rng.uniform(0.0, 2.0);
    } else if (std::isfinite(hi)) {
      p = hi - rng.uniform(0.0, 2.0);
    }
    point.push_back(p);
  }
  g.feasible_by_construction = rng.bernoulli(0.8);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> entries;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.4)) continue;
      const double a = rng.uniform(-2, 2);
      if (a == 0.0) continue;
      entries.emplace_back(j, a);
      activity += a * point[static_cast<std::size_t>(j)];
    }
    const double pick = rng.uniform();
    const Sense sense = pick < 0.4   ? Sense::kLessEqual
                        : pick < 0.8 ? Sense::kGreaterEqual
                                     : Sense::kEqual;
    double rhs;
    if (g.feasible_by_construction) {
      // Keep the reference point feasible.
      switch (sense) {
        case Sense::kLessEqual: rhs = activity + rng.uniform(0.0, 2.0); break;
        case Sense::kGreaterEqual: rhs = activity - rng.uniform(0.0, 2.0); break;
        default: rhs = activity; break;
      }
    } else {
      rhs = rng.uniform(-4, 4);
    }
    const RowId r = g.model.add_row(sense, rhs);
    for (auto [j, a] : entries) g.model.add_coefficient(r, vars[static_cast<std::size_t>(j)], a);
  }
  return g;
}

class LpAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpAgreement, DenseAndRevisedAgree) {
  const auto g = generate(GetParam());
  const Solution dense = solve_dense(g.model);

  // Every revised-simplex configuration must agree with the dense oracle:
  // both pricing rules, with and without the crash basis, and with Bland's
  // rule forced from the first degenerate step (stall_limit = 0).
  struct Config {
    const char* name;
    Pricing pricing;
    bool crash;
    int stall_limit;
  };
  const Config configs[] = {
      {"steepest+crash", Pricing::kSteepestEdge, true, 2000},
      {"steepest-no-crash", Pricing::kSteepestEdge, false, 2000},
      {"steepest-bland", Pricing::kSteepestEdge, true, 0},
      {"partial+crash", Pricing::kPartialDantzig, true, 2000},
      {"partial-no-crash", Pricing::kPartialDantzig, false, 0},
  };
  for (const Config& config : configs) {
    Options opt;
    opt.pricing = config.pricing;
    opt.crash = config.crash;
    opt.stall_limit = config.stall_limit;
    const Solution revised = solve_revised(g.model, opt);

    if (g.feasible_by_construction) {
      EXPECT_NE(dense.status, Status::kInfeasible);
      EXPECT_NE(revised.status, Status::kInfeasible) << config.name;
    }
    // Statuses must agree (both solvers are exact on these sizes).
    ASSERT_EQ(dense.status, revised.status)
        << config.name << ": dense=" << to_string(dense.status)
        << " revised=" << to_string(revised.status);
    if (dense.status == Status::kOptimal) {
      const double scale = std::max({1.0, std::abs(dense.objective)});
      EXPECT_NEAR(dense.objective, revised.objective, 1e-5 * scale) << config.name;
      EXPECT_LE(g.model.max_violation(revised.x), 1e-6) << config.name;
      EXPECT_LE(g.model.max_violation(dense.x), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, LpAgreement,
                         ::testing::Range<std::uint64_t>(1, 161));

class LpMinMax : public ::testing::TestWithParam<std::uint64_t> {};

// Random instances with the exact structure of the replication LP (Fig. 7):
// coverage equalities + min-max load rows + capacity-style link rows.  The
// optimum from the revised simplex must match the dense oracle and respect
// all structural invariants the formulation in src/core relies on.
TEST_P(LpMinMax, ReplicationShapedInstances) {
  Rng rng(GetParam() * 7919);
  const int classes = 2 + static_cast<int>(rng.below(8));
  const int nodes = 2 + static_cast<int>(rng.below(5));
  Model m;
  const VarId load = m.add_variable(0, kInf, 1.0, "LoadCost");
  std::vector<std::vector<VarId>> p(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c)
    for (int j = 0; j < nodes; ++j)
      p[static_cast<std::size_t>(c)].push_back(m.add_variable(0, 1, 0));
  // Coverage.
  for (int c = 0; c < classes; ++c) {
    const RowId r = m.add_row(Sense::kEqual, 1);
    for (int j = 0; j < nodes; ++j)
      m.add_coefficient(r, p[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)], 1);
  }
  // Load rows: sum_c w_c * p_cj - LoadCost <= 0.
  std::vector<double> weight(static_cast<std::size_t>(classes));
  for (auto& w : weight) w = rng.uniform(0.5, 3.0);
  for (int j = 0; j < nodes; ++j) {
    const RowId r = m.add_row(Sense::kLessEqual, 0);
    for (int c = 0; c < classes; ++c)
      m.add_coefficient(r, p[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)],
                        weight[static_cast<std::size_t>(c)]);
    m.add_coefficient(r, load, -1);
  }
  const Solution dense = solve_dense(m);
  const Solution revised = solve_revised(m);
  ASSERT_EQ(dense.status, Status::kOptimal);
  ASSERT_EQ(revised.status, Status::kOptimal);
  EXPECT_NEAR(dense.objective, revised.objective, 1e-6);
  // The balanced optimum equals total weight / nodes.
  double total = 0.0;
  for (double w : weight) total += w;
  EXPECT_NEAR(revised.objective, total / nodes, 1e-6);
  // Coverage invariant on the revised solution.
  for (int c = 0; c < classes; ++c) {
    double sum = 0.0;
    for (int j = 0; j < nodes; ++j)
      sum += revised.value(p[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)]);
    EXPECT_NEAR(sum, 1.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(MinMaxShapes, LpMinMax, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace nwlb::lp
