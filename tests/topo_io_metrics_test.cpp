// Topology I/O (text + DOT) and structural metrics.
#include <gtest/gtest.h>

#include "topo/io.h"
#include "topo/metrics.h"
#include "topo/topology.h"

namespace nwlb::topo {
namespace {

TEST(TopologyIo, RoundTrip) {
  const Topology original = make_internet2();
  const Topology parsed = read_topology_string(to_topology_string(original));
  EXPECT_EQ(parsed.name, original.name);
  ASSERT_EQ(parsed.graph.num_nodes(), original.graph.num_nodes());
  ASSERT_EQ(parsed.graph.num_edges(), original.graph.num_edges());
  for (NodeId v = 0; v < original.graph.num_nodes(); ++v) {
    EXPECT_EQ(parsed.graph.name(v), original.graph.name(v));
    EXPECT_DOUBLE_EQ(parsed.graph.population(v), original.graph.population(v));
    const auto a = original.graph.neighbors(v);
    const auto b = parsed.graph.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(TopologyIo, ParsesCommentsAndErrors) {
  const Topology t = read_topology_string(
      "# a comment\n"
      "topology Tiny\n"
      "node a 100 # trailing comment\n"
      "node b 200\n"
      "edge a b\n");
  EXPECT_EQ(t.name, "Tiny");
  EXPECT_EQ(t.graph.num_edges(), 1);

  EXPECT_THROW(read_topology_string("node a 1\n"), std::invalid_argument);  // No name.
  EXPECT_THROW(read_topology_string("topology X\nnode a 1\nnode a 2\n"),
               std::invalid_argument);  // Duplicate.
  EXPECT_THROW(read_topology_string("topology X\nedge a b\n"), std::invalid_argument);
  EXPECT_THROW(read_topology_string("topology X\nfrobnicate\n"), std::invalid_argument);
}

TEST(TopologyIo, DotContainsNodesAndEdges) {
  const std::string dot = to_dot(make_internet2());
  EXPECT_NE(dot.find("graph \"Internet2\""), std::string::npos);
  EXPECT_NE(dot.find("\"Seattle\""), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find('}'), std::string::npos);
}

TEST(Metrics, LineGraph) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node("n" + std::to_string(i));
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  const Routing r(g);
  const GraphMetrics m = compute_metrics(r);
  EXPECT_EQ(m.num_nodes, 5);
  EXPECT_EQ(m.num_edges, 4);
  EXPECT_EQ(m.diameter, 4);
  EXPECT_DOUBLE_EQ(m.average_degree, 1.6);
  EXPECT_DOUBLE_EQ(m.clustering, 0.0);
  EXPECT_EQ(m.max_degree, 2);
  EXPECT_NEAR(m.average_path_length, 2.0, 1e-9);
}

TEST(Metrics, TriangleIsFullyClustered) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const Routing r(g);
  EXPECT_DOUBLE_EQ(compute_metrics(r).clustering, 1.0);
}

TEST(Metrics, SyntheticTopologiesLookLikeIspMaps) {
  // Short diameters and skewed degrees — the properties the evaluation
  // depends on (DESIGN.md §2 substitution rationale).
  for (const auto& t : {make_sprint(), make_ntt()}) {
    const Routing r(t.graph);
    const GraphMetrics m = compute_metrics(r);
    EXPECT_LE(m.diameter, 8) << t.name;
    EXPECT_LE(m.average_path_length, 4.0) << t.name;
    EXPECT_GE(m.max_degree, 2 * static_cast<int>(m.average_degree)) << t.name;
  }
}

TEST(Metrics, DegreeHistogramSums) {
  const auto t = make_geant();
  const auto hist = degree_histogram(t.graph);
  int total = 0, weighted = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    total += hist[d];
    weighted += static_cast<int>(d) * hist[d];
  }
  EXPECT_EQ(total, t.graph.num_nodes());
  EXPECT_EQ(weighted, 2 * t.graph.num_edges());
}

}  // namespace
}  // namespace nwlb::topo
