// ConfigMapper (§7.1): LP fractions -> hash ranges, exactly.
#include <gtest/gtest.h>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "core/split_lp.h"
#include "shim/hash.h"
#include "topo/overlap.h"
#include "topo/topology.h"
#include "traffic/matrix.h"
#include "util/rng.h"

namespace nwlb::core {
namespace {

struct MapperFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  Scenario scenario;

  MapperFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}
};

TEST(ConfigMapper, FractionsRoundTrip) {
  MapperFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const Assignment a = ReplicationLp(input).solve();
  const auto configs = build_shim_configs(input, a);
  ASSERT_EQ(configs.size(), 11u);
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    double p_total = 0.0, o_total = 0.0;
    for (const auto& share : a.process[c]) p_total += share.fraction;
    for (const auto& off : a.offloads[c])
      if (off.direction == nids::Direction::kForward) o_total += off.fraction;
    const auto [mapped_p, mapped_o] =
        mapped_fractions(configs, static_cast<int>(c), nids::Direction::kForward);
    EXPECT_NEAR(mapped_p, p_total, 1e-6) << "class " << c;
    EXPECT_NEAR(mapped_o, o_total, 1e-6) << "class " << c;
    // Full coverage: the whole hash space is owned by someone.
    EXPECT_NEAR(mapped_p + mapped_o, 1.0, 1e-6);
  }
}

TEST(ConfigMapper, ExactlyOneOwnerPerHash) {
  MapperFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const Assignment a = ReplicationLp(input).solve();
  const auto configs = build_shim_configs(input, a);
  nwlb::util::Rng rng(31);
  for (int trial = 0; trial < 2000; ++trial) {
    const int c = static_cast<int>(rng.below(input.classes.size()));
    const auto h = static_cast<std::uint32_t>(rng());
    int owners = 0;
    for (std::size_t pop = 0; pop < configs.size(); ++pop) {
      const auto action = configs[pop].lookup(c, nids::Direction::kForward, h);
      if (action.kind != shim::Action::Kind::kIgnore) ++owners;
    }
    EXPECT_EQ(owners, 1) << "class " << c << " hash " << h;
  }
}

TEST(ConfigMapper, OwnersAreOnPath) {
  MapperFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const Assignment a = ReplicationLp(input).solve();
  const auto configs = build_shim_configs(input, a);
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    const auto nodes = input.classes[c].fwd_nodes();
    for (std::size_t pop = 0; pop < configs.size(); ++pop) {
      const auto* table = configs[pop].table(static_cast<int>(c), nids::Direction::kForward);
      if (table == nullptr || table->empty()) continue;
      EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), static_cast<int>(pop)))
          << "off-path pop " << pop << " owns ranges for class " << c;
    }
  }
}

TEST(ConfigMapper, ReplicationTargetsAreMirrors) {
  MapperFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const Assignment a = ReplicationLp(input).solve();
  const auto configs = build_shim_configs(input, a);
  bool saw_replication = false;
  for (const auto& config : configs) {
    for (std::size_t c = 0; c < input.classes.size(); ++c) {
      const auto* table = config.table(static_cast<int>(c), nids::Direction::kForward);
      if (table == nullptr) continue;
      for (const auto& range : table->ranges()) {
        if (range.action.kind == shim::Action::Kind::kReplicate) {
          saw_replication = true;
          EXPECT_EQ(range.action.mirror, input.datacenter_id());
        }
      }
    }
  }
  EXPECT_TRUE(saw_replication);
}

TEST(ConfigMapper, SplitDirectionsOverlapAtMin) {
  // Under asymmetric routing, the fwd- and rev-covered hash ranges must
  // overlap in exactly min(cov_fwd, cov_rev) — the mapper anchors both
  // layouts at hash 0.
  MapperFixture f;
  ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const topo::AsymmetricRouteGenerator generator(f.scenario.routing());
  nwlb::util::Rng rng(5);
  traffic::apply_asymmetry(input.classes, generator, 0.4, rng);
  const Assignment a = SplitTrafficLp(input).solve();
  const auto configs = build_shim_configs(input, a);

  nwlb::util::Rng sampler(6);
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    int both = 0;
    const int kSamples = 200;
    for (int s = 0; s < kSamples; ++s) {
      const auto h = static_cast<std::uint32_t>(sampler());
      bool fwd_owned = false, rev_owned = false;
      for (const auto& config : configs) {
        if (config.lookup(static_cast<int>(c), nids::Direction::kForward, h).kind !=
            shim::Action::Kind::kIgnore)
          fwd_owned = true;
        if (config.lookup(static_cast<int>(c), nids::Direction::kReverse, h).kind !=
            shim::Action::Kind::kIgnore)
          rev_owned = true;
      }
      if (fwd_owned && rev_owned) ++both;
    }
    EXPECT_NEAR(static_cast<double>(both) / kSamples, a.coverage[c], 0.12)
        << "class " << c;
  }
}

}  // namespace
}  // namespace nwlb::core
