// The online control loop end to end: estimator-driven epochs steer the
// data plane without an oracle traffic matrix, rollouts conserve every
// session, and the loop's telemetry lands in the registry.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/controller.h"
#include "obs/metrics.h"
#include "online/estimator.h"
#include "online/loop.h"
#include "sim/failure.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::online {
namespace {

struct LoopFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  obs::Registry registry;
  core::Controller controller;
  core::EpochResult bootstrap;
  core::ProblemInput input;
  sim::ReplaySimulator simulator;
  sim::TraceGenerator generator;

  static core::ControllerOptions controller_options() {
    core::ControllerOptions copts;
    copts.architecture = core::Architecture::kPathReplicate;
    return copts;
  }
  static sim::TraceGenerator make_generator(const core::ProblemInput& input) {
    sim::TraceConfig tc;
    tc.scanners = 0;  // Pure class-proportional traffic for estimation.
    return sim::TraceGenerator(input.classes, tc, /*seed=*/77);
  }

  LoopFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        controller(topology, tm, controller_options()),
        bootstrap(controller.run({.tm = &tm})),
        input(controller.scenario().problem(core::Architecture::kPathReplicate)),
        simulator(input, bootstrap.bundle),
        generator(make_generator(input)) {}

  ControlLoop make_loop(std::uint64_t drain = 0) {
    ControlLoopOptions lopts;
    lopts.estimator_options.scale_to_total = tm.total();
    lopts.rollout.drain_sessions = drain;
    lopts.metrics = &registry;
    return ControlLoop(controller, simulator, bootstrap.bundle, lopts);
  }
};

TEST(ControlLoop, EstimatorDrivenEpochTracksOracle) {
  LoopFixture f;
  ControlLoop loop = f.make_loop();
  IntervalReport last;
  for (int w = 0; w < 4; ++w)
    last = loop.run_interval(f.generator.generate(2500), f.generator);
  EXPECT_EQ(loop.intervals_run(), 4);

  // The ISSUE acceptance bound: with static traffic, the estimator-fed
  // epoch's max load lands within 10% of the oracle-fed plan.
  const double oracle_load = f.bootstrap.assignment.load_cost;
  ASSERT_GT(oracle_load, 0.0);
  EXPECT_FALSE(last.epoch.degraded);
  EXPECT_NEAR(last.epoch.assignment.load_cost, oracle_load, 0.10 * oracle_load);

  // And the estimated matrix itself tracks the oracle shape (trace
  // sampling is the only noise source).
  EXPECT_LT(estimation_error(loop.estimator().estimate(), f.tm), 0.15);
  EXPECT_NEAR(last.estimate_total, f.tm.total(), 1e-6 * f.tm.total());
}

TEST(ControlLoop, ConservesEverySessionAcrossIntervals) {
  LoopFixture f;
  ControlLoop loop = f.make_loop(/*drain=*/200);
  std::uint64_t replayed = 0;
  for (int w = 0; w < 3; ++w) {
    const IntervalReport report =
        loop.run_interval(f.generator.generate(1000), f.generator);
    replayed += report.sessions_replayed;
  }
  const sim::RolloutStats rollout = f.simulator.rollout_stats();
  EXPECT_EQ(rollout.sessions_current_generation + rollout.sessions_draining_generation,
            replayed);
  EXPECT_EQ(rollout.sessions_unassigned, 0u);
  EXPECT_EQ(f.simulator.stats().sessions_replayed, replayed);
  // Every installed rollout came through the engine.
  EXPECT_EQ(loop.rollout().installs(), rollout.rollouts_installed);
}

TEST(ControlLoop, SteadyStateSkipsIdenticalBundles) {
  LoopFixture f;
  ControlLoop loop = f.make_loop();
  // Replay the *same* window every interval: the first observation seeds
  // the EWMA exactly, so from then on the estimate — and therefore the
  // warm-started epoch's plan — is bit-identical each interval.
  const std::vector<sim::SessionSpec> window = f.generator.generate(1000);
  for (int w = 0; w < 4; ++w) loop.run_interval(window, f.generator);
  // A truly static feed converges: later rollouts are skipped as
  // identical and the data plane keeps its compiled tables.
  EXPECT_GT(loop.rollout().skipped(), 0u);
  EXPECT_EQ(loop.rollout().installs() + loop.rollout().skipped(), 4u);
}

TEST(ControlLoop, ExportsOnlineMetrics) {
  LoopFixture f;
  ControlLoop loop = f.make_loop();
  for (int w = 0; w < 2; ++w)
    loop.run_interval(f.generator.generate(800), f.generator);
  EXPECT_EQ(f.registry.counter("nwlb_online_intervals_total").value(), 2u);
  EXPECT_EQ(f.registry.counter("nwlb_online_sessions_total").value(), 1600u);
  const std::uint64_t installed =
      f.registry.counter("nwlb_online_rollouts_total").value();
  const std::uint64_t skipped =
      f.registry.counter("nwlb_online_rollouts_skipped_total").value();
  EXPECT_EQ(installed + skipped, 2u);
  EXPECT_GT(f.registry.gauge("nwlb_online_estimate_total_sessions").value(), 0.0);
  EXPECT_EQ(f.registry.gauge("nwlb_online_failures_reported").value(), 0.0);
}

TEST(ControlLoop, ZeroTrafficWindowKeepsEstimateWellFormed) {
  LoopFixture f;
  ControlLoop loop = f.make_loop();
  loop.run_interval(f.generator.generate(1000), f.generator);  // Seed the EWMA.

  // A window with no traffic at all: the support floor plus scale
  // anchoring must keep every known class pair positive — the LP model
  // shape cannot collapse just because an interval was quiet.
  const IntervalReport quiet = loop.run_interval({}, f.generator);
  EXPECT_EQ(quiet.sessions_replayed, 0u);
  EXPECT_NEAR(quiet.estimate_total, f.tm.total(), 1e-6 * f.tm.total());
  EXPECT_FALSE(quiet.epoch.degraded);
  const traffic::TrafficMatrix estimate = loop.estimator().estimate();
  for (const auto& cls : f.input.classes)
    EXPECT_GT(estimate.volume(cls.ingress, cls.egress), 0.0)
        << "class " << cls.id << " vanished from the estimate";

  // And the loop keeps running normally afterwards.
  const IntervalReport next =
      loop.run_interval(f.generator.generate(1000), f.generator);
  EXPECT_FALSE(next.epoch.degraded);
  EXPECT_EQ(loop.intervals_run(), 3);
}

TEST(ControlLoop, MirrorFlapWithinOneIntervalStaysBelowHysteresis) {
  LoopFixture f;
  // Blackhole every processing node (PoPs and the datacenter — mirrors
  // live in the problem's processing-node id space, not the graph's) for
  // the middle third of the first interval's window: whichever mirrors
  // receive offloaded frames flap down and back within a single interval.
  sim::FailureSchedule flap;
  for (int node = 0; node < f.input.num_processing_nodes(); ++node) {
    sim::FailureEvent event;
    event.kind = sim::FailureKind::kMirrorBlackhole;
    event.target = node;
    event.begin = 300;
    event.end = 600;
    flap.add(event);
  }
  sim::ReplayOptions ropts;
  ropts.failures = &flap;
  sim::ReplaySimulator simulator(f.input, f.bootstrap.bundle, ropts);
  ControlLoopOptions lopts;
  lopts.estimator_options.scale_to_total = f.tm.total();
  ControlLoop loop(f.controller, simulator, f.bootstrap.bundle, lopts);

  const IntervalReport first =
      loop.run_interval(f.generator.generate(1000), f.generator);
  // The flap really happened on the data plane...
  EXPECT_GT(simulator.stats().tunnel_frames_blackholed, 0u);
  // ...but a sub-interval dip stays below the health monitor's
  // down_after hysteresis: no failure report, no verdict flip, and the
  // epoch is a normal re-optimization, not a degraded fallback.
  EXPECT_EQ(first.failures_reported, 0);
  EXPECT_EQ(simulator.stats().mirror_flaps, 0u);
  EXPECT_FALSE(first.epoch.degraded);

  // A clean follow-up interval stays healthy and loses nothing.
  const IntervalReport second =
      loop.run_interval(f.generator.generate(1000), f.generator);
  EXPECT_EQ(second.failures_reported, 0);
  EXPECT_FALSE(second.epoch.degraded);
  EXPECT_EQ(simulator.stats().sessions_replayed, 2000u);
}

TEST(ControlLoopOptions, ValidateRejectsEveryBadField) {
  ControlLoopOptions good;
  EXPECT_NO_THROW(good.validate());

  ControlLoopOptions bad_spec;
  bad_spec.estimator = "arima";
  EXPECT_THROW(bad_spec.validate(), std::invalid_argument);
  bad_spec.estimator = "ewma:window=0";
  EXPECT_THROW(bad_spec.validate(), std::invalid_argument);

  // The merged defaults are validated too, not just the spec overrides.
  ControlLoopOptions bad_defaults;
  bad_defaults.estimator_options.support_floor = 1.0;
  EXPECT_THROW(bad_defaults.validate(), std::invalid_argument);

  ControlLoopOptions bad_budget;
  bad_budget.epoch_max_seconds = -1.0;
  EXPECT_THROW(bad_budget.validate(), std::invalid_argument);
  ControlLoopOptions bad_tolerance;
  bad_tolerance.epoch_objective_tolerance = 1.0;
  EXPECT_THROW(bad_tolerance.validate(), std::invalid_argument);

  // The constructor enforces the same contract: a misconfigured loop
  // never starts.
  LoopFixture f;
  ControlLoopOptions lopts;
  lopts.estimator = "ewma:gamma=1";
  EXPECT_THROW(ControlLoop(f.controller, f.simulator, f.bootstrap.bundle, lopts),
               std::invalid_argument);
}

TEST(ControlLoop, RunsWithEveryRegisteredEstimatorKind) {
  // The loop never names a concrete estimator type: any registered spec
  // drives an interval end to end and tracks the oracle on static traffic.
  for (std::string_view kind : estimator_kinds()) {
    LoopFixture f;
    ControlLoopOptions lopts;
    lopts.estimator = std::string(kind);
    lopts.estimator_options.scale_to_total = f.tm.total();
    ControlLoop loop(f.controller, f.simulator, f.bootstrap.bundle, lopts);
    IntervalReport last;
    for (int w = 0; w < 3; ++w)
      last = loop.run_interval(f.generator.generate(2000), f.generator);
    EXPECT_EQ(loop.estimator().kind(), kind);
    EXPECT_FALSE(last.epoch.degraded) << kind;
    const double oracle_load = f.bootstrap.assignment.load_cost;
    EXPECT_NEAR(last.epoch.assignment.load_cost, oracle_load,
                0.10 * oracle_load)
        << kind;
  }
}

TEST(ControlLoop, RunsWithoutARegistry) {
  LoopFixture f;
  ControlLoopOptions lopts;
  lopts.estimator_options.scale_to_total = f.tm.total();
  ControlLoop loop(f.controller, f.simulator, f.bootstrap.bundle, lopts);
  const IntervalReport report =
      loop.run_interval(f.generator.generate(500), f.generator);
  EXPECT_EQ(report.sessions_replayed, 500u);
  EXPECT_GT(report.estimate_total, 0.0);
}

}  // namespace
}  // namespace nwlb::online
