// MirrorHealth: debounced up/down verdicts from tunnel reconcile windows.
#include "shim/health.h"

#include <gtest/gtest.h>

namespace nwlb::shim {
namespace {

MirrorHealthOptions fast_options() {
  MirrorHealthOptions o;
  o.loss_threshold = 0.5;
  o.down_after = 2;
  o.up_after = 2;
  o.min_frames = 4;
  return o;
}

TEST(MirrorHealth, StartsUpAndStaysUpOnCleanWindows) {
  MirrorHealth health(fast_options());
  EXPECT_FALSE(health.down());
  for (int i = 0; i < 5; ++i) health.observe_window(100, 0);
  EXPECT_FALSE(health.down());
  EXPECT_EQ(health.windows_observed(), 5);
  EXPECT_EQ(health.transitions(), 0);
}

TEST(MirrorHealth, OneBadWindowNeverFlaps) {
  MirrorHealth health(fast_options());
  health.observe_window(100, 100);  // 100% loss, but only one window.
  EXPECT_FALSE(health.down());
  health.observe_window(100, 0);  // Clean again: the streak resets.
  health.observe_window(100, 100);
  EXPECT_FALSE(health.down());
  EXPECT_EQ(health.transitions(), 0);
}

TEST(MirrorHealth, GoesDownAfterConsecutiveBadWindows) {
  MirrorHealth health(fast_options());
  health.observe_window(100, 80);
  health.observe_window(100, 80);
  EXPECT_TRUE(health.down());
  EXPECT_EQ(health.transitions(), 1);
}

TEST(MirrorHealth, RecoversOnlyAfterConsecutiveCleanWindows) {
  MirrorHealth health(fast_options());
  health.observe_window(100, 100);
  health.observe_window(100, 100);
  ASSERT_TRUE(health.down());
  health.observe_window(100, 0);
  EXPECT_TRUE(health.down()) << "one clean window must not flap";
  health.observe_window(100, 100);  // Relapse: the good streak resets.
  health.observe_window(100, 0);
  EXPECT_TRUE(health.down());
  health.observe_window(100, 0);
  EXPECT_FALSE(health.down());
  EXPECT_EQ(health.transitions(), 2);
}

TEST(MirrorHealth, LossThresholdIsABoundary) {
  MirrorHealth health(fast_options());
  // 49% loss twice: below the 50% threshold, still healthy.
  health.observe_window(100, 49);
  health.observe_window(100, 49);
  EXPECT_FALSE(health.down());
  // At the threshold the window counts as bad.
  health.observe_window(100, 50);
  health.observe_window(100, 50);
  EXPECT_TRUE(health.down());
}

TEST(MirrorHealth, SparseWindowsJudgedByKeepalive) {
  MirrorHealth health(fast_options());
  // Below min_frames the loss fraction is meaningless (1 of 2 frames lost
  // is 50% "loss"); the keepalive verdict decides instead.
  health.observe_window(2, 1, /*keepalive_ok=*/true);
  health.observe_window(2, 1, /*keepalive_ok=*/true);
  EXPECT_FALSE(health.down());
  // A dead keepalive on an idle tunnel is how a fail-closed shim that
  // stopped sending data still detects the outage...
  health.observe_window(0, 0, /*keepalive_ok=*/false);
  health.observe_window(0, 0, /*keepalive_ok=*/false);
  EXPECT_TRUE(health.down());
  // ...and a live keepalive on the idle tunnel is how it sees recovery.
  health.observe_window(0, 0, /*keepalive_ok=*/true);
  health.observe_window(0, 0, /*keepalive_ok=*/true);
  EXPECT_FALSE(health.down());
}

TEST(MirrorHealth, ResetClearsVerdictAndCounters) {
  MirrorHealth health(fast_options());
  health.observe_window(100, 100);
  health.observe_window(100, 100);
  ASSERT_TRUE(health.down());
  health.reset();
  EXPECT_FALSE(health.down());
  EXPECT_EQ(health.windows_observed(), 0);
  EXPECT_EQ(health.transitions(), 0);
}

}  // namespace
}  // namespace nwlb::shim
