// Routing validation (topo/validate.h): real topologies' precomputed
// routings certify; explicit broken paths are rejected per invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "topo/routing.h"
#include "topo/topology.h"
#include "topo/validate.h"

namespace nwlb::topo {
namespace {

bool mentions(const std::vector<std::string>& violations, const std::string& needle) {
  for (const std::string& v : violations)
    if (v.find(needle) != std::string::npos) return true;
  return false;
}

std::string join(const std::vector<std::string>& violations) {
  std::string out;
  for (const std::string& v : violations) out += v + "\n";
  return out;
}

// A 5-node graph with one cycle, so some pairs have multi-hop paths.
Graph make_graph() {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  return g;
}

TEST(TopoValidate, CertifiesPaperTopologies) {
  for (const Topology& t : {make_internet2(), make_geant()}) {
    const Routing routing(t.graph);
    const auto violations = validate(routing);
    EXPECT_TRUE(violations.empty()) << join(violations);
  }
}

TEST(TopoValidate, CertifiesRoutingPaths) {
  const Graph g = make_graph();
  const Routing routing(g);
  for (NodeId src = 0; src < g.num_nodes(); ++src)
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
      EXPECT_TRUE(validate_path(g, routing.path(src, dst), src, dst).empty());
}

TEST(TopoValidate, RejectsEmptyPath) {
  const Graph g = make_graph();
  EXPECT_TRUE(mentions(validate_path(g, {}, 0, 2), "is empty"));
}

TEST(TopoValidate, RejectsDeadNode) {
  const Graph g = make_graph();
  const auto violations = validate_path(g, {0, 9, 2}, 0, 2);
  EXPECT_TRUE(mentions(violations, "dead node 9")) << join(violations);
}

TEST(TopoValidate, RejectsWrongEndpoints) {
  const Graph g = make_graph();
  auto violations = validate_path(g, {1, 2}, 0, 2);
  EXPECT_TRUE(mentions(violations, "starts at 1")) << join(violations);
  violations = validate_path(g, {0, 1}, 0, 2);
  EXPECT_TRUE(mentions(violations, "does not terminate")) << join(violations);
}

TEST(TopoValidate, RejectsNonExistentHop) {
  const Graph g = make_graph();
  // 0-2 is not an edge in the cycle.
  const auto violations = validate_path(g, {0, 2}, 0, 2);
  EXPECT_TRUE(mentions(violations, "non-existent link")) << join(violations);
}

TEST(TopoValidate, RejectsRevisitedNode) {
  const Graph g = make_graph();
  const auto violations = validate_path(g, {0, 1, 0, 4}, 0, 4);
  EXPECT_TRUE(mentions(violations, "not a simple path")) << join(violations);
}

TEST(TopoValidate, ConnectedGraphContractHoldsAtConstruction) {
  // A disconnected graph is stopped by the Routing constructor's contract,
  // so validate() can assume connectivity was true at build time.
  Graph g;
  g.add_node("a");
  g.add_node("b");
  EXPECT_THROW(Routing{g}, std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::topo
