// Steepest-edge pricing, bounded-accuracy termination, and per-class delta
// re-solves — the machinery that makes ISP-scale replication LPs solve
// instead of timing out (the "TiNet blowup" fix).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/dense_simplex.h"
#include "lp/revised_simplex.h"
#include "lp/validate.h"
#include "util/rng.h"

namespace nwlb::lp {
namespace {

using nwlb::util::Rng;

/// A TiNet-shaped instance: per-class coverage equalities (GUB block),
/// min-max load rows coupling every class through a shared epigraph
/// variable, and a handful of capacity-style side rows.  `columns_of`
/// returns each class's structural columns for focus-pricing tests.
struct ShapedLp {
  Model model;
  VarId load;
  std::vector<std::vector<VarId>> p;  // [class][node].

  std::vector<int> columns_of(const std::vector<int>& class_indices) const {
    std::vector<int> columns;
    columns.push_back(load.value);
    for (const int c : class_indices)
      for (const VarId v : p[static_cast<std::size_t>(c)]) columns.push_back(v.value);
    return columns;
  }
};

ShapedLp make_shaped(int classes, int nodes, std::uint64_t seed,
                     double perturb_class_weight = 1.0, int perturbed_class = 0) {
  Rng rng(seed);
  ShapedLp lp;
  lp.load = lp.model.add_variable(0, kInf, 1.0, "LoadCost");
  lp.p.resize(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c)
    for (int j = 0; j < nodes; ++j)
      lp.p[static_cast<std::size_t>(c)].push_back(lp.model.add_variable(0, 1, 0));
  for (int c = 0; c < classes; ++c) {
    const RowId r = lp.model.add_row(Sense::kEqual, 1);
    for (int j = 0; j < nodes; ++j)
      lp.model.add_coefficient(r, lp.p[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)], 1);
  }
  for (int j = 0; j < nodes; ++j) {
    const RowId r = lp.model.add_row(Sense::kLessEqual, 0);
    for (int c = 0; c < classes; ++c) {
      double w = 0.5 + 2.5 * rng.uniform();
      if (c == perturbed_class) w *= perturb_class_weight;
      lp.model.add_coefficient(r, lp.p[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)], w);
    }
    lp.model.add_coefficient(r, lp.load, -1);
  }
  // Capacity-style rows: random subsets capped loosely (never binding the
  // reference point, keeping the instance feasible by construction).
  for (int k = 0; k < nodes; ++k) {
    const RowId r = lp.model.add_row(Sense::kLessEqual, 4.0 + rng.uniform());
    for (int c = 0; c < classes; ++c) {
      if (!rng.bernoulli(0.3)) continue;
      lp.model.add_coefficient(
          r, lp.p[static_cast<std::size_t>(c)][static_cast<std::size_t>(k % nodes)],
          0.5 + rng.uniform());
    }
  }
  return lp;
}

int total_iterations(const Solution& s) { return s.iterations + s.phase1_iterations; }

// The headline regression: on an equality-heavy min-max instance the
// steepest-edge rule must need strictly fewer iterations than the legacy
// rotating-window partial pricing it replaced (on the real TiNet LP the
// gap is ~2-50x; this shaped stand-in keeps the test fast).
TEST(SteepestEdge, FewerIterationsThanPartialPricing) {
  const ShapedLp shaped = make_shaped(60, 8, 0x7ea1);
  Options steepest;
  steepest.pricing = Pricing::kSteepestEdge;
  Options partial = steepest;
  partial.pricing = Pricing::kPartialDantzig;

  const Solution se = solve_revised(shaped.model, steepest);
  const Solution pd = solve_revised(shaped.model, partial);
  ASSERT_EQ(se.status, Status::kOptimal);
  ASSERT_EQ(pd.status, Status::kOptimal);
  EXPECT_NEAR(se.objective, pd.objective, 1e-6 * std::max(1.0, std::abs(se.objective)));
  EXPECT_LT(total_iterations(se), total_iterations(pd))
      << "steepest-edge took " << total_iterations(se) << " iterations vs partial "
      << total_iterations(pd);
}

TEST(SteepestEdge, ObjectiveBoundEqualsObjectiveAtOptimum) {
  const ShapedLp shaped = make_shaped(10, 4, 0x0b1a5);
  const Solution s = solve_revised(shaped.model);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective_bound, s.objective);
}

// Bounded-accuracy early termination: with a tolerance the solve may stop
// at kGoodEnough, and whatever it returns must be primal feasible with an
// objective provably within the tolerance of the exact optimum.
TEST(GoodEnough, CertifiedWithinToleranceOfExactOptimum) {
  const ShapedLp shaped = make_shaped(40, 6, 0x600d);
  const Solution exact = solve_revised(shaped.model);
  ASSERT_EQ(exact.status, Status::kOptimal);

  for (const double tolerance : {0.01, 0.1, 0.5}) {
    Options opt;
    opt.objective_tolerance = tolerance;
    const Solution approx = solve_revised(shaped.model, opt);
    ASSERT_TRUE(approx.solved()) << to_string(approx.status);
    const double scale = std::max(1.0, std::abs(exact.objective));
    // Achieved objective within tolerance of the optimum...
    EXPECT_LE(approx.objective, exact.objective + tolerance * scale + 1e-6);
    // ...and the certificate brackets the optimum from below.
    EXPECT_LE(approx.objective_bound, exact.objective + 1e-6 * scale);
    EXPECT_GE(approx.objective, approx.objective_bound - 1e-9);
    EXPECT_LE(shaped.model.max_violation(approx.x), 1e-6);
    // The validator must accept the tolerance-certified solution.
    const auto report = validate_solution(shaped.model, approx);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

// A coarse tolerance on a large shaped instance must actually exercise the
// early exit (not just fall through to optimality) and save iterations.
TEST(GoodEnough, CoarseToleranceStopsEarly) {
  const ShapedLp shaped = make_shaped(120, 10, 0xeaa17);
  const Solution exact = solve_revised(shaped.model);
  ASSERT_EQ(exact.status, Status::kOptimal);
  Options opt;
  opt.objective_tolerance = 0.25;
  const Solution approx = solve_revised(shaped.model, opt);
  ASSERT_TRUE(approx.solved()) << to_string(approx.status);
  EXPECT_LE(total_iterations(approx), total_iterations(exact));
  if (approx.status == Status::kGoodEnough) {
    EXPECT_LT(total_iterations(approx), total_iterations(exact));
    const auto report = validate_solution(shaped.model, approx);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

// Per-class delta re-solve: after perturbing one class, pricing focused on
// that class's columns (plus logicals) must still reach the true optimum —
// the solver's full verification scan is the safety net.
TEST(DeltaResolve, FocusedRepricingReachesTheOptimum) {
  const ShapedLp base = make_shaped(30, 5, 0xde17a);
  const Solution base_solution = solve_revised(base.model);
  ASSERT_EQ(base_solution.status, Status::kOptimal);

  // Same instance with class 3's weights scaled 1.6x (same model shape).
  const ShapedLp drifted = make_shaped(30, 5, 0xde17a, 1.6, 3);
  const Solution cold = solve_revised(drifted.model);
  ASSERT_EQ(cold.status, Status::kOptimal);

  Options focus_opt;
  const std::vector<int> focus = drifted.columns_of({3});
  focus_opt.priority_columns = &focus;
  const Solution warm = solve_revised(drifted.model, focus_opt, &base_solution.basis);
  ASSERT_EQ(warm.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_LE(total_iterations(warm), total_iterations(cold));
}

// A deliberately wrong focus set must not yield a wrong answer: when the
// restricted scan cannot certify optimality the solver widens to full
// pricing and keeps going.
TEST(DeltaResolve, WrongFocusStillSolvesExactly) {
  const ShapedLp base = make_shaped(20, 4, 0xbad0);
  const Solution base_solution = solve_revised(base.model);
  ASSERT_EQ(base_solution.status, Status::kOptimal);
  const ShapedLp drifted = make_shaped(20, 4, 0xbad0, 2.0, 7);
  const Solution cold = solve_revised(drifted.model);
  ASSERT_EQ(cold.status, Status::kOptimal);

  Options focus_opt;
  const std::vector<int> wrong_focus = drifted.columns_of({1});  // Not class 7.
  focus_opt.priority_columns = &wrong_focus;
  const Solution warm = solve_revised(drifted.model, focus_opt, &base_solution.basis);
  ASSERT_EQ(warm.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
}

// Both backends must report the same status for the same exhausted
// wall-clock budget (the dense oracle used to check only max_iterations).
TEST(TimeBudget, DenseAndRevisedAgreeOnExhaustion) {
  const ShapedLp shaped = make_shaped(40, 6, 0x71e3);
  Options opt;
  opt.max_seconds = 1e-9;  // Expires before the first pivot.
  const Solution revised = solve_revised(shaped.model, opt);
  const Solution dense = solve_dense(shaped.model, opt);
  EXPECT_EQ(revised.status, Status::kTimeLimit);
  EXPECT_EQ(dense.status, Status::kTimeLimit);
}

}  // namespace
}  // namespace nwlb::lp
