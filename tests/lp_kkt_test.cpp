// Medium-scale optimality certification: verify the revised simplex's
// answers through KKT conditions (primal feasibility, dual feasibility of
// reduced costs at the returned point, and strong duality), which needs no
// reference solver and therefore scales beyond the dense oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/revised_simplex.h"
#include "util/rng.h"

namespace nwlb::lp {
namespace {

using nwlb::util::Rng;

// Dense column view of a normalized model (small helper, test-only).
std::vector<std::vector<std::pair<int, double>>> columns_of(const Model& m) {
  std::vector<std::vector<std::pair<int, double>>> cols(
      static_cast<std::size_t>(m.num_variables()));
  for (int r = 0; r < m.num_rows(); ++r)
    for (const Entry& e : m.row_entries(RowId{r}))
      cols[static_cast<std::size_t>(e.var)].emplace_back(r, e.coef);
  return cols;
}

// Verifies KKT at (x, y): feasibility, reduced-cost signs, strong duality.
void verify_kkt(const Model& model, const Solution& sol) {
  ASSERT_EQ(sol.status, Status::kOptimal);
  ASSERT_EQ(static_cast<int>(sol.duals.size()), model.num_rows());
  EXPECT_LE(model.max_violation(sol.x), 1e-6);

  Model m = model;
  m.normalize();
  const auto cols = columns_of(m);
  constexpr double kTol = 1e-5;

  // Dual feasibility w.r.t. row senses: for a <= row, y <= 0 is NOT the
  // convention here; our duals satisfy d_logical = -y with logical bounds
  // [0, inf) for <=; equivalently y_i <= tol for <=, y_i >= -tol for >=.
  for (int r = 0; r < m.num_rows(); ++r) {
    const double y = sol.duals[static_cast<std::size_t>(r)];
    switch (m.sense(RowId{r})) {
      case Sense::kLessEqual:
        EXPECT_LE(y, kTol) << "row " << r;
        break;
      case Sense::kGreaterEqual:
        EXPECT_GE(y, -kTol) << "row " << r;
        break;
      case Sense::kEqual:
        break;  // Free sign.
    }
    // Complementary slackness: slack * y == 0.
    double activity = 0.0;
    for (const Entry& e : m.row_entries(RowId{r}))
      activity += e.coef * sol.x[static_cast<std::size_t>(e.var)];
    const double slack = m.rhs(RowId{r}) - activity;
    EXPECT_NEAR(slack * y, 0.0, 1e-4 * (1.0 + std::abs(y))) << "row " << r;
  }

  // Reduced costs: d_j = c_j - y'A_j; sign must match the active bound,
  // and strong duality: c'x == y'b + sum_j d_j * x_j over bound-active js.
  double dual_objective = 0.0;
  for (int r = 0; r < m.num_rows(); ++r)
    dual_objective += sol.duals[static_cast<std::size_t>(r)] * m.rhs(RowId{r});
  for (int j = 0; j < m.num_variables(); ++j) {
    double d = m.cost(VarId{j});
    for (const auto& [r, a] : cols[static_cast<std::size_t>(j)])
      d -= sol.duals[static_cast<std::size_t>(r)] * a;
    const double x = sol.x[static_cast<std::size_t>(j)];
    const double lo = m.lower(VarId{j});
    const double hi = m.upper(VarId{j});
    const bool at_lower = std::isfinite(lo) && std::abs(x - lo) < 1e-6;
    const bool at_upper = std::isfinite(hi) && std::abs(x - hi) < 1e-6;
    if (at_lower && at_upper) {
      // Fixed: any sign.
    } else if (at_lower) {
      EXPECT_GE(d, -kTol) << "var " << j;
    } else if (at_upper) {
      EXPECT_LE(d, kTol) << "var " << j;
    } else {
      EXPECT_NEAR(d, 0.0, kTol) << "var " << j;  // Interior => basic.
    }
    if (at_lower || at_upper) dual_objective += d * x;
  }
  const double scale = std::max(1.0, std::abs(sol.objective));
  EXPECT_NEAR(dual_objective, sol.objective, 1e-4 * scale);
}

class KktCertification : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KktCertification, MediumRandomLps) {
  Rng rng(GetParam() * 6701);
  Model m;
  const int n = 150 + static_cast<int>(rng.below(300));
  const int k = 40 + static_cast<int>(rng.below(80));
  std::vector<VarId> vars;
  std::vector<double> point;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-1, 0);
    const double hi = lo + rng.uniform(0.5, 2.0);
    vars.push_back(m.add_variable(lo, hi, rng.uniform(-1, 1)));
    point.push_back(lo + 0.5 * (hi - lo));
  }
  for (int i = 0; i < k; ++i) {
    double activity = 0.0;
    std::vector<std::pair<int, double>> entries;
    for (int t = 0; t < 8; ++t) {
      const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const double a = rng.uniform(-2, 2);
      entries.emplace_back(j, a);
      activity += a * point[static_cast<std::size_t>(j)];
    }
    const bool le = rng.bernoulli(0.5);
    const RowId r = m.add_row(le ? Sense::kLessEqual : Sense::kGreaterEqual,
                              le ? activity + rng.uniform(0, 1) : activity - rng.uniform(0, 1));
    for (auto [j, a] : entries) m.add_coefficient(r, vars[static_cast<std::size_t>(j)], a);
  }
  const Solution sol = solve_revised(m);
  verify_kkt(m, sol);
}

INSTANTIATE_TEST_SUITE_P(Random, KktCertification,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(KktCertification, ReplicationShapedAtScale) {
  // A structured instance with the exact shape of the Fig. 7 LP at a
  // few-thousand-variable scale; the optimum must satisfy KKT.
  Rng rng(4242);
  Model m;
  const int classes = 400, nodes = 24;
  const VarId load = m.add_variable(0, kInf, 1.0, "LoadCost");
  std::vector<std::vector<VarId>> p(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    const RowId cov = m.add_row(Sense::kEqual, 1.0);
    for (int j = 0; j < 5; ++j) {
      const VarId v = m.add_variable(0, 1, 0);
      p[static_cast<std::size_t>(c)].push_back(v);
      m.add_coefficient(cov, v, 1.0);
    }
  }
  std::vector<RowId> load_rows;
  for (int jn = 0; jn < nodes; ++jn) {
    const RowId r = m.add_row(Sense::kLessEqual, 0.0);
    m.add_coefficient(r, load, -1.0);
    load_rows.push_back(r);
  }
  for (int c = 0; c < classes; ++c) {
    const double weight = rng.uniform(0.2, 2.0);
    for (std::size_t j = 0; j < p[static_cast<std::size_t>(c)].size(); ++j) {
      const auto node = static_cast<std::size_t>((c + 3 * static_cast<int>(j)) % nodes);
      m.add_coefficient(load_rows[node], p[static_cast<std::size_t>(c)][j], weight);
    }
  }
  const Solution sol = solve_revised(m);
  verify_kkt(m, sol);
  EXPECT_GT(sol.objective, 0.0);
}

}  // namespace
}  // namespace nwlb::lp
