#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace nwlb::util {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{4, 1, 3, 2};  // Unsorted on purpose.
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, QuantileOrFallsBackOnEmptyOnly) {
  const std::vector<double> xs{4, 1, 3, 2};
  // Non-empty input: identical to quantile().
  EXPECT_DOUBLE_EQ(quantile_or(xs, 0.5, -1.0), quantile(xs, 0.5));
  EXPECT_DOUBLE_EQ(quantile_or(xs, 0.0, -1.0), 1.0);
  // Empty input returns the fallback instead of throwing — the contract
  // the bench harnesses rely on under NWLB_RUNS=0.
  EXPECT_DOUBLE_EQ(quantile_or(std::vector<double>{}, 0.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_or(std::vector<double>{}, 0.5, 7.5), 7.5);
  // A bad q is still a programming error, empty input or not.
  EXPECT_THROW(quantile_or(xs, 1.5, 0.0), std::invalid_argument);
  EXPECT_THROW(quantile_or(std::vector<double>{}, -0.1, 0.0), std::invalid_argument);
}

TEST(Stats, BoxStatsFiveNumbers) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q25, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q75, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
  EXPECT_FALSE(b.to_string().empty());
}

TEST(Stats, MaxOverMean) {
  const std::vector<double> xs{1, 1, 4};
  EXPECT_DOUBLE_EQ(max_over_mean(xs), 2.0);
  EXPECT_THROW(max_over_mean(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(Stats, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 7.0);
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.min, 7.0);
  EXPECT_DOUBLE_EQ(b.max, 7.0);
}

TEST(EmpiricalCdf, InverseEndpoints) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 3.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 2.0);
}

TEST(EmpiricalCdf, AtIsMonotone) {
  EmpiricalCdf cdf({1.0, 2.0, 4.0, 8.0});
  double prev = -1.0;
  for (double x = 0.0; x < 10.0; x += 0.25) {
    const double v = cdf.at(x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(EmpiricalCdf, RoundTrip) {
  EmpiricalCdf cdf({1.0, 2.0, 4.0, 8.0});
  for (double u : {0.1, 0.33, 0.5, 0.77, 0.9}) {
    EXPECT_NEAR(cdf.at(cdf.inverse(u)), u, 1e-9);
  }
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::util
