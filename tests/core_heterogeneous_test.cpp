// Heterogeneous hardware and other capacity-shape edge cases of the
// replication formulation (§3: differing Cap_j^r across the network).
#include <gtest/gtest.h>

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "core/validate.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::core {
namespace {

struct HeteroFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  Scenario scenario;

  HeteroFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}
};

TEST(Heterogeneous, UpgradedNodesAttractWork) {
  HeteroFixture f;
  ProblemInput input = f.scenario.problem(Architecture::kPathNoReplicate);
  // Upgrade one transit node massively; it should absorb more traffic.
  const int upgraded = 4;  // KansasCity, a central transit PoP.
  input.capacities.scale_node(upgraded, 8.0);
  const Assignment a = ReplicationLp(input).solve();
  // Normalized loads are balanced, so the upgraded node's *absolute* work
  // (load x capacity) must exceed any single legacy node's.
  const double upgraded_work =
      a.node_load[upgraded][0] * input.capacities.of(upgraded, nids::Resource::kCpu);
  double max_legacy_work = 0.0;
  for (int j = 0; j < input.num_pops(); ++j) {
    if (j == upgraded) continue;
    max_legacy_work = std::max(
        max_legacy_work,
        a.node_load[static_cast<std::size_t>(j)][0] *
            input.capacities.of(j, nids::Resource::kCpu));
  }
  EXPECT_GT(upgraded_work, max_legacy_work);
  EXPECT_TRUE(validate_assignment(input, a).empty());
}

TEST(Heterogeneous, PartialUpgradeLowersOptimum) {
  HeteroFixture f;
  const ProblemInput base = f.scenario.problem(Architecture::kPathNoReplicate);
  const double before = ReplicationLp(base).solve().load_cost;
  ProblemInput upgraded = base;
  for (int j = 0; j < upgraded.num_pops(); j += 3) upgraded.capacities.scale_node(j, 4.0);
  const double after = ReplicationLp(upgraded).solve().load_cost;
  EXPECT_LT(after, before);
}

TEST(Heterogeneous, DowngradedNodeDoesNotBreakFeasibility) {
  // A nearly-dead node (1% capacity) can always be bypassed: the LP stays
  // feasible (full coverage) and simply routes around it.
  HeteroFixture f;
  ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  input.capacities.set(7, nids::Resource::kCpu,
                       0.01 * f.scenario.base_capacity());
  const Assignment a = ReplicationLp(input).solve();
  EXPECT_EQ(a.lp.status, lp::Status::kOptimal);
  for (double cov : a.coverage) EXPECT_NEAR(cov, 1.0, 1e-6);
  ValidationOptions opts;
  opts.require_full_coverage = true;
  EXPECT_TRUE(validate_assignment(input, a, opts).empty());
}

TEST(Heterogeneous, PerClassFootprintScalesShiftLoad) {
  // Doubling one class's footprint doubles its contribution: the optimum
  // with scale 2 on all classes is exactly twice the base optimum.
  HeteroFixture f;
  const ProblemInput base = f.scenario.problem(Architecture::kPathNoReplicate);
  const double unit = ReplicationLp(base).solve().load_cost;
  ProblemInput heavy = base;
  heavy.class_scale.assign(heavy.classes.size(), 2.0);
  const double doubled = ReplicationLp(heavy).solve().load_cost;
  EXPECT_NEAR(doubled, 2.0 * unit, 1e-6);
}

}  // namespace
}  // namespace nwlb::core
