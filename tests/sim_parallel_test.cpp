// Sharded parallel replay determinism: any worker count must produce
// ReplayStats byte-identical to the serial run — including under injected
// tunnel loss.  This test is also run under ThreadSanitizer in CI to prove
// the shards share no mutable state.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/mapper.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::sim {
namespace {

struct ParallelFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;
  core::ProblemInput input;
  core::Assignment assignment;
  shim::ConfigBundle bundle;

  ParallelFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        input(scenario.problem(core::Architecture::kPathReplicate)),
        assignment(core::ReplicationLp(input).solve()),
        bundle(core::build_bundle(input, assignment)) {}

  ReplayStats run(int workers, double loss = 0.0, int sessions = 1200) {
    ReplayOptions opts;
    opts.num_workers = workers;
    opts.replication_loss = loss;
    ReplaySimulator sim(input, bundle, opts);
    TraceConfig tc;
    tc.scanners = 4;
    TraceGenerator gen(input.classes, tc, /*seed=*/41);
    sim.replay(gen.generate(sessions), gen);
    return sim.stats();
  }

  /// Full replay then metric export into a fresh registry, rendered to
  /// (Prometheus text, JSON) — the property test compares these strings.
  std::pair<std::string, std::string> run_exposition(int workers, double loss = 0.0,
                                                     int sessions = 1200) {
    ReplayOptions opts;
    opts.num_workers = workers;
    opts.replication_loss = loss;
    ReplaySimulator sim(input, bundle, opts);
    TraceConfig tc;
    tc.scanners = 4;
    TraceGenerator gen(input.classes, tc, /*seed=*/41);
    sim.replay(gen.generate(sessions), gen);
    obs::Registry registry;
    sim.export_metrics(registry);
    return {obs::prometheus_text(registry.snapshot()), obs::to_json(registry)};
  }
};

void expect_identical(const ReplayStats& a, const ReplayStats& b) {
  // Exact comparisons, doubles included: every accumulated double is an
  // integer-valued work/byte count, so parallel merging must be exact.
  EXPECT_EQ(a.node_work, b.node_work);
  EXPECT_EQ(a.node_packets, b.node_packets);
  EXPECT_EQ(a.link_replicated_bytes, b.link_replicated_bytes);
  EXPECT_EQ(a.sessions_replayed, b.sessions_replayed);
  EXPECT_EQ(a.packets_replayed, b.packets_replayed);
  EXPECT_EQ(a.signature_matches, b.signature_matches);
  EXPECT_EQ(a.tunnel_frames_sent, b.tunnel_frames_sent);
  EXPECT_EQ(a.tunnel_frames_dropped, b.tunnel_frames_dropped);
  EXPECT_EQ(a.tunnel_frames_detected_lost, b.tunnel_frames_detected_lost);
  EXPECT_EQ(a.stateful_covered, b.stateful_covered);
  EXPECT_EQ(a.stateful_missed, b.stateful_missed);
  EXPECT_EQ(a.decisions_process, b.decisions_process);
  EXPECT_EQ(a.decisions_replicate, b.decisions_replicate);
  EXPECT_EQ(a.decisions_ignore, b.decisions_ignore);
  EXPECT_EQ(a.mirror_flaps, b.mirror_flaps);
}

TEST(ParallelReplay, FourWorkersMatchSerialExactly) {
  ParallelFixture f;
  const ReplayStats serial = f.run(1);
  const ReplayStats parallel = f.run(4);
  ASSERT_GT(serial.packets_replayed, 0u);
  ASSERT_GT(serial.tunnel_frames_sent, 0u);
  expect_identical(serial, parallel);
}

TEST(ParallelReplay, MatchesSerialUnderInjectedLoss) {
  // Loss decisions come from per-session RNG streams and trailing drops
  // are reconciled at merge time, so even the loss-detection counters are
  // shard-invariant.
  ParallelFixture f;
  const ReplayStats serial = f.run(1, 0.3);
  const ReplayStats parallel = f.run(4, 0.3);
  ASSERT_GT(serial.tunnel_frames_dropped, 0u);
  EXPECT_EQ(serial.tunnel_frames_detected_lost, serial.tunnel_frames_dropped);
  expect_identical(serial, parallel);
}

TEST(ParallelReplay, OddWorkerCountsAndMoreWorkersThanSessions) {
  ParallelFixture f;
  const ReplayStats serial = f.run(1, 0.0, 30);
  expect_identical(serial, f.run(3, 0.0, 30));
  expect_identical(serial, f.run(64, 0.0, 30));  // More shards than sessions.
}

TEST(ParallelReplay, AutoWorkerCountResolves) {
  ParallelFixture f;
  ReplayOptions opts;
  opts.num_workers = 0;  // Auto: one per hardware thread, capped.
  ReplaySimulator sim(f.input, f.bundle, opts);
  EXPECT_GE(sim.num_workers(), 1);
  TraceConfig tc;
  TraceGenerator gen(f.input.classes, tc, 41);
  const auto trace = gen.generate(200);
  sim.replay(trace, gen);
  EXPECT_EQ(sim.stats().sessions_replayed, trace.size());
}

TEST(ParallelReplay, MetricsExportByteIdenticalToSerial) {
  // The acceptance property for the observability layer: the *exported*
  // metrics — both exposition formats, rendered to strings — are
  // byte-identical for serial and sharded replay, with and without loss.
  ParallelFixture f;
  const auto serial = f.run_exposition(1);
  const auto parallel = f.run_exposition(4);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  const auto serial_loss = f.run_exposition(1, 0.3);
  const auto parallel_loss = f.run_exposition(4, 0.3);
  EXPECT_EQ(serial_loss.first, parallel_loss.first);
  EXPECT_EQ(serial_loss.second, parallel_loss.second);
}

TEST(ParallelReplay, StatsIncludeShimDecisionTotals) {
  ParallelFixture f;
  const ReplayStats stats = f.run(1);
  // Every replayed packet is decided by each shim on its path (no crashes
  // in this fixture), so the verdict totals cover at least one decision
  // per packet and nothing else feeds them.
  const std::uint64_t decided = stats.decisions_process +
                                stats.decisions_replicate + stats.decisions_ignore;
  EXPECT_GE(decided, stats.packets_replayed);
  EXPECT_GT(stats.decisions_replicate, 0u);
  EXPECT_EQ(stats.crash_skipped_packets, 0u);
  EXPECT_EQ(stats.mirror_flaps, 0u);  // No failures injected, no flaps.
}

TEST(ParallelReplay, RejectsNegativeWorkerCount) {
  ParallelFixture f;
  ReplayOptions opts;
  opts.num_workers = -2;
  EXPECT_THROW(ReplaySimulator(f.input, f.bundle, opts), std::invalid_argument);
}

TEST(ParallelReplay, CumulativeAcrossCallsAndReset) {
  ParallelFixture f;
  ReplayOptions opts;
  opts.num_workers = 4;
  ReplaySimulator sim(f.input, f.bundle, opts);
  TraceConfig tc;
  TraceGenerator gen(f.input.classes, tc, 41);
  const auto trace = gen.generate(300);
  sim.replay(trace, gen);
  const ReplayStats once = sim.stats();
  sim.replay(trace, gen);
  EXPECT_EQ(sim.stats().packets_replayed, 2 * once.packets_replayed);
  sim.reset();
  EXPECT_EQ(sim.stats().packets_replayed, 0u);
  EXPECT_EQ(sim.stats().sessions_replayed, 0u);
}

}  // namespace
}  // namespace nwlb::sim
