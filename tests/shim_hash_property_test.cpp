// Hash properties the shim's correctness rests on (§7.2): both directions
// of a session must hash identically, and per-source task splitting must
// depend on the source address alone.
#include <gtest/gtest.h>

#include <cstdint>

#include "nids/packet.h"
#include "shim/hash.h"
#include "util/rng.h"

namespace nwlb::shim {
namespace {

using nwlb::nids::FiveTuple;
using nwlb::util::Rng;

FiveTuple random_tuple(Rng& rng) {
  FiveTuple t;
  t.src_ip = static_cast<std::uint32_t>(rng());
  t.dst_ip = static_cast<std::uint32_t>(rng());
  t.src_port = static_cast<std::uint16_t>(rng());
  t.dst_port = static_cast<std::uint16_t>(rng());
  t.protocol = rng.bernoulli(0.5) ? 6 : 17;
  return t;
}

TEST(ShimHashProperty, TupleHashIsDirectionInvariant) {
  Rng rng(0xB0B);
  for (int trial = 0; trial < 10'000; ++trial) {
    const FiveTuple t = random_tuple(rng);
    EXPECT_EQ(hash_tuple(t), hash_tuple(t.reversed())) << "trial " << trial;
    EXPECT_EQ(hash_tuple(t), hash_tuple(t.canonical())) << "trial " << trial;
  }
}

TEST(ShimHashProperty, TupleHashIsDirectionInvariantUnderSeeds) {
  Rng rng(0x5EED);
  for (int trial = 0; trial < 1'000; ++trial) {
    const FiveTuple t = random_tuple(rng);
    const auto seed = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(hash_tuple(t, seed), hash_tuple(t.reversed(), seed)) << "trial " << trial;
  }
}

TEST(ShimHashProperty, SourceHashIgnoresPortsAndProtocol) {
  // hash_source() keys per-source work (Scan detection); two packets from
  // the same host must land in the same slice whatever the flow details.
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 10'000; ++trial) {
    const FiveTuple a = random_tuple(rng);
    FiveTuple b = random_tuple(rng);
    b.src_ip = a.src_ip;
    EXPECT_EQ(hash_source(a.src_ip), hash_source(b.src_ip)) << "trial " << trial;
  }
}

TEST(ShimHashProperty, HashesSpreadAcrossTheSpace) {
  // Sanity on distribution: 4096 random sessions should not collapse into
  // a few range buckets (16 buckets, each expected ~256, allow wide slack).
  Rng rng(0xD15E);
  int buckets[16] = {};
  for (int trial = 0; trial < 4'096; ++trial)
    ++buckets[hash_tuple(random_tuple(rng)) >> 28];
  for (int b = 0; b < 16; ++b) {
    EXPECT_GT(buckets[b], 128) << "bucket " << b;
    EXPECT_LT(buckets[b], 512) << "bucket " << b;
  }
}

TEST(ShimHashProperty, DistinctSessionsRarelyCollide) {
  Rng rng(0xFACE);
  int collisions = 0;
  for (int trial = 0; trial < 10'000; ++trial) {
    const FiveTuple a = random_tuple(rng);
    const FiveTuple b = random_tuple(rng);
    if (a.canonical() == b.canonical()) continue;
    if (hash_tuple(a) == hash_tuple(b)) ++collisions;
  }
  // 10k pairs over a 2^32 space: even a handful of collisions would signal
  // a broken canonicalization or truncation bug.
  EXPECT_LE(collisions, 2);
}

}  // namespace
}  // namespace nwlb::shim
