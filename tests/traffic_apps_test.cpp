// Application-level class splitting (§3's port-based classes).
#include "traffic/apps.h"

#include <gtest/gtest.h>

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::traffic {
namespace {

TEST(Apps, DefaultMixSumsToOne) {
  double total = 0.0;
  for (const auto& app : default_app_mix()) total += app.traffic_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Apps, SplitPreservesVolumeAndPaths) {
  const auto topology = topo::make_internet2();
  const topo::Routing routing(topology.graph);
  const auto tm = gravity_matrix(topology.graph, 8e6);
  const auto aggregate = build_classes(routing, tm);
  const AppClasses split = split_by_application(aggregate, default_app_mix());

  EXPECT_EQ(split.classes.size(), aggregate.size() * default_app_mix().size());
  EXPECT_EQ(split.classes.size(), split.footprint_scale.size());
  EXPECT_NEAR(total_sessions(split.classes), total_sessions(aggregate), 1.0);
  // Paths are inherited; ids are dense.
  for (std::size_t i = 0; i < split.classes.size(); ++i) {
    EXPECT_EQ(split.classes[i].id, static_cast<int>(i));
    EXPECT_FALSE(split.classes[i].fwd_path.empty());
  }
  // HTTP at 46% of each pair's sessions.
  EXPECT_NEAR(split.classes[0].sessions, aggregate[0].sessions * 0.46, 1e-6);
  EXPECT_EQ(split.application[0], "http");
}

TEST(Apps, ValidatesProfiles) {
  const auto topology = topo::make_internet2();
  const topo::Routing routing(topology.graph);
  const auto aggregate = build_classes(routing, gravity_matrix(topology.graph, 1e5));
  EXPECT_THROW(split_by_application(aggregate, {}), std::invalid_argument);
  std::vector<AppProfile> bad{{"a", 80, 0.7, 1.0, 1024.0}};  // Sums to 0.7.
  EXPECT_THROW(split_by_application(aggregate, bad), std::invalid_argument);
  std::vector<AppProfile> negative{{"a", 80, 1.0, -1.0, 1024.0}};
  EXPECT_THROW(split_by_application(aggregate, negative), std::invalid_argument);
}

TEST(Apps, HeterogeneousFootprintsFeedTheLp) {
  // End-to-end: per-app footprint scales change the optimum sensibly —
  // the expensive classes dominate the load, and the LP still balances.
  const auto topology = topo::make_internet2();
  const auto tm = gravity_matrix(topology.graph, paper_total_sessions(11));
  const core::Scenario scenario(topology, tm);
  core::ProblemInput input = scenario.problem(core::Architecture::kPathReplicate);

  const AppClasses split = split_by_application(input.classes, default_app_mix());
  input.classes = split.classes;
  input.class_scale = split.footprint_scale;

  const core::Assignment a = core::ReplicationLp(input).solve();
  EXPECT_EQ(a.lp.status, lp::Status::kOptimal);
  // Every app class fully covered.
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    double total = 0.0;
    for (const auto& share : a.process[c]) total += share.fraction;
    for (const auto& o : a.offloads[c])
      if (o.direction == nids::Direction::kForward) total += o.fraction;
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  // Load is balanced far below the ingress benchmark even with the skew.
  EXPECT_LT(a.load_cost, 0.6);
}

}  // namespace
}  // namespace nwlb::traffic
