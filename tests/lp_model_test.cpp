#include "lp/model.h"

#include <gtest/gtest.h>

namespace nwlb::lp {
namespace {

TEST(Model, AddVariableValidatesBounds) {
  Model m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), std::invalid_argument);
  const VarId v = m.add_variable(0.0, 1.0, 2.5, "x");
  EXPECT_EQ(m.num_variables(), 1);
  EXPECT_DOUBLE_EQ(m.lower(v), 0.0);
  EXPECT_DOUBLE_EQ(m.upper(v), 1.0);
  EXPECT_DOUBLE_EQ(m.cost(v), 2.5);
  EXPECT_EQ(m.var_name(v), "x");
}

TEST(Model, RowsAndCoefficients) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1);
  const RowId r = m.add_row(Sense::kLessEqual, 10.0, "cap");
  m.add_coefficient(r, x, 2.0);
  m.add_coefficient(r, y, 3.0);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_EQ(m.num_nonzeros(), 2u);
  EXPECT_EQ(m.row_name(r), "cap");
  EXPECT_DOUBLE_EQ(m.rhs(r), 10.0);
}

TEST(Model, NormalizeMergesDuplicates) {
  Model m;
  const VarId x = m.add_variable(0, 1, 0);
  const RowId r = m.add_row(Sense::kEqual, 1.0);
  m.add_coefficient(r, x, 0.5);
  m.add_coefficient(r, x, 0.5);
  m.add_coefficient(r, x, -1.0);  // Sums to zero: dropped.
  m.normalize();
  EXPECT_TRUE(m.row_entries(r).empty());
}

TEST(Model, ZeroCoefficientIgnored) {
  Model m;
  const VarId x = m.add_variable(0, 1, 0);
  const RowId r = m.add_row(Sense::kEqual, 0.0);
  m.add_coefficient(r, x, 0.0);
  EXPECT_EQ(m.num_nonzeros(), 0u);
}

TEST(Model, MaxViolationMeasuresAllSenses) {
  Model m;
  const VarId x = m.add_variable(0.0, 2.0, 0.0);
  const RowId le = m.add_row(Sense::kLessEqual, 1.0);
  const RowId ge = m.add_row(Sense::kGreaterEqual, 0.5);
  const RowId eq = m.add_row(Sense::kEqual, 1.5);
  m.add_coefficient(le, x, 1.0);
  m.add_coefficient(ge, x, 1.0);
  m.add_coefficient(eq, x, 1.0);
  EXPECT_NEAR(m.max_violation({1.5}), 0.5, 1e-12);  // le violated by 0.5.
  EXPECT_NEAR(m.max_violation({0.0}), 1.5, 1e-12);  // eq violated by 1.5.
  EXPECT_NEAR(m.max_violation({3.0}), 2.0, 1e-12);  // le by 2, bound by 1.
}

TEST(Model, ObjectiveValue) {
  Model m;
  m.add_variable(0, 1, 2.0);
  m.add_variable(0, 1, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({0.5, 1.0}), 0.0);
  EXPECT_THROW(m.objective_value({0.5}), std::invalid_argument);
}

TEST(Model, BadHandlesThrow) {
  Model m;
  m.add_variable(0, 1, 0);
  EXPECT_THROW(m.lower(VarId{5}), std::out_of_range);
  EXPECT_THROW(m.rhs(RowId{0}), std::out_of_range);
  const RowId r = m.add_row(Sense::kEqual, 0);
  EXPECT_THROW(m.add_coefficient(r, VarId{9}, 1.0), std::out_of_range);
}

TEST(Model, RejectsNonFiniteCoefficient) {
  Model m;
  const VarId x = m.add_variable(0, 1, 0);
  const RowId r = m.add_row(Sense::kEqual, 0);
  EXPECT_THROW(m.add_coefficient(r, x, kInf), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::lp
