// The leader lease: term-numbered elections where every vote and
// heartbeat ack doubles as a promise not to help elect anyone else until
// the promised horizon.  The safety property under test is exclusivity —
// at every tick, at most one live replica holds a majority-committed
// lease — across the nasty paths: leader crash, crash + instant restart
// (durable promise), and a partition that strands the leader in the
// minority.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "dist/bus.h"
#include "dist/replica.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::dist {
namespace {

/// A bare cluster: replicas + bus stepped the way ReplicatedControlLoop
/// steps them, minus the data plane (gossip slices are all-zero).
struct Cluster {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm = traffic::gravity_matrix(
      topology.graph, traffic::paper_total_sessions(11));
  std::vector<std::unique_ptr<Replica>> replicas;
  MessageBus bus;
  std::vector<bool> alive;
  std::size_t num_classes = 0;
  int rounds;

  explicit Cluster(int n, ReplicaOptions ropts = {})
      : bus(n), alive(static_cast<std::size_t>(n), true), rounds(n + 4) {
    core::ControllerOptions copts;
    copts.architecture = core::Architecture::kPathReplicate;
    for (int r = 0; r < n; ++r)
      replicas.push_back(
          std::make_unique<Replica>(r, n, topology, tm, copts, ropts));
    num_classes = replicas.front()->controller().scenario().classes().size();
  }

  void crash(int r) { alive[static_cast<std::size_t>(r)] = false; }
  void revive(int r) {
    if (!alive[static_cast<std::size_t>(r)])
      replicas[static_cast<std::size_t>(r)]->on_restart();
    alive[static_cast<std::size_t>(r)] = true;
  }

  /// One control interval; returns the unique valid-lease leader or -1.
  /// Asserts the exclusivity invariant every call.
  int run_interval(std::uint64_t tick) {
    bus.flush();
    EstimatePartial zero;
    zero.sessions.assign(num_classes, 0);
    zero.bytes.assign(num_classes, 0);
    for (auto& rep : replicas)
      if (alive[static_cast<std::size_t>(rep->id())])
        rep->begin_interval(tick, zero);
    for (int round = 0; round < rounds; ++round) {
      for (auto& rep : replicas)
        if (alive[static_cast<std::size_t>(rep->id())])
          rep->run_round(bus, tick, round, rounds);
      bus.advance_round();
    }
    for (auto& rep : replicas)
      if (alive[static_cast<std::size_t>(rep->id())]) rep->end_interval(tick);

    int leader = -1;
    for (auto& rep : replicas) {
      if (!alive[static_cast<std::size_t>(rep->id())]) continue;
      if (!rep->lease_valid(tick)) continue;
      EXPECT_EQ(leader, -1) << "replicas " << leader << " and " << rep->id()
                            << " both hold a committed lease at tick " << tick;
      leader = rep->id();
    }
    return leader;
  }
};

TEST(Lease, FirstIntervalElectsExactlyOneLeader) {
  Cluster cluster(3);
  const int leader = cluster.run_interval(0);
  // Candidacy rounds are staggered by id, so replica 0 runs first and wins.
  EXPECT_EQ(leader, 0);
  EXPECT_EQ(cluster.replicas[0]->role(), Role::kLeader);
  EXPECT_EQ(cluster.replicas[0]->term(), 1u);
  EXPECT_EQ(cluster.replicas[1]->role(), Role::kFollower);
  EXPECT_EQ(cluster.replicas[2]->role(), Role::kFollower);
  EXPECT_EQ(cluster.replicas[1]->leader_hint(), 0);
  std::uint64_t elections = 0;
  for (auto& rep : cluster.replicas) elections += rep->elections_started();
  EXPECT_EQ(elections, 1u);
}

TEST(Lease, HeartbeatRenewsWithoutNewElections) {
  Cluster cluster(3);
  for (std::uint64_t tick = 0; tick < 6; ++tick)
    EXPECT_EQ(cluster.run_interval(tick), 0) << "tick " << tick;
  EXPECT_EQ(cluster.replicas[0]->term(), 1u);
  std::uint64_t elections = 0;
  for (auto& rep : cluster.replicas) elections += rep->elections_started();
  EXPECT_EQ(elections, 1u) << "a stable leader must never trigger re-election";
}

TEST(Lease, LeaderCrashReelectsAfterPromiseExpires) {
  ReplicaOptions ropts;
  ropts.lease_ticks = 3;
  Cluster cluster(3, ropts);
  EXPECT_EQ(cluster.run_interval(0), 0);
  EXPECT_EQ(cluster.run_interval(1), 0);
  cluster.crash(0);
  // The tick-1 heartbeat promised lease_until = 1 + 3 = 4: followers
  // cannot help elect anyone before tick 4.  Availability is sacrificed
  // for exactly the promised horizon, never longer.
  int leaderless = 0;
  int new_leader = -1;
  std::uint64_t tick = 2;
  for (; tick < 8 && new_leader < 0; ++tick) {
    const int leader = cluster.run_interval(tick);
    if (leader < 0)
      ++leaderless;
    else
      new_leader = leader;
  }
  EXPECT_EQ(leaderless, 2) << "ticks 2 and 3 sit inside the old promise";
  ASSERT_GT(new_leader, 0);
  EXPECT_EQ(cluster.replicas[static_cast<std::size_t>(new_leader)]->term(), 2u);
  // And the new reign is stable.
  EXPECT_EQ(cluster.run_interval(tick), new_leader);
}

TEST(Lease, RestartKeepsDurablePromiseAndTerm) {
  ReplicaOptions ropts;
  ropts.lease_ticks = 3;
  Cluster cluster(3, ropts);
  EXPECT_EQ(cluster.run_interval(0), 0);
  const std::uint64_t promised = cluster.replicas[0]->lease_until();
  EXPECT_GT(promised, 0u);
  cluster.crash(0);
  cluster.revive(0);  // Crash + instant restart within the same interval.
  // Volatile state reset: no longer leader, no committed lease.
  EXPECT_EQ(cluster.replicas[0]->role(), Role::kFollower);
  EXPECT_FALSE(cluster.replicas[0]->lease_valid(1));
  // Durable state survived: the term and the self-promise horizon.  The
  // restarted replica must not help elect (or become) a second leader
  // inside its own outstanding promise — forgetting it could produce two
  // overlapping committed leases.
  EXPECT_EQ(cluster.replicas[0]->term(), 1u);
  EXPECT_EQ(cluster.replicas[0]->lease_until(), promised);
  // The cluster as a whole stays safe through the promise window and
  // re-elects after it; exclusivity is asserted inside run_interval.
  int new_leader = -1;
  for (std::uint64_t tick = 1; tick < 8 && new_leader < 0; ++tick)
    new_leader = cluster.run_interval(tick);
  ASSERT_GE(new_leader, 0);
  EXPECT_GE(cluster.replicas[static_cast<std::size_t>(new_leader)]->term(), 2u);
}

TEST(Lease, MinorityPartitionedLeaderStepsDownMajorityElects) {
  ReplicaOptions ropts;
  ropts.lease_ticks = 3;
  Cluster cluster(3, ropts);
  EXPECT_EQ(cluster.run_interval(0), 0);
  EXPECT_EQ(cluster.run_interval(1), 0);
  // Strand the leader alone in group A: its heartbeats reach nobody, so
  // its committed lease can never renew past the horizon it already holds.
  cluster.bus.set_partition(0b001);
  int new_leader = -1;
  std::uint64_t tick = 2;
  for (; tick < 10 && new_leader <= 0; ++tick) {
    const int leader = cluster.run_interval(tick);
    if (leader > 0) new_leader = leader;
    // Exclusivity inside run_interval covers the dangerous overlap: the
    // old leader's committed lease and the majority's new one never both
    // cover the same tick.
  }
  ASSERT_GT(new_leader, 0);
  EXPECT_EQ(cluster.replicas[static_cast<std::size_t>(new_leader)]->term(), 2u);
  // The deposed leader stepped down on its own (lease lapsed, no quorum).
  // It may be running a doomed candidacy inside its partition, but it can
  // never be a committed-lease leader again.
  EXPECT_NE(cluster.replicas[0]->role(), Role::kLeader);

  // Heal the cut: the old leader adopts the new term as a follower.
  cluster.bus.set_partition(0);
  EXPECT_EQ(cluster.run_interval(tick), new_leader);
  EXPECT_EQ(cluster.replicas[0]->term(),
            cluster.replicas[static_cast<std::size_t>(new_leader)]->term());
  EXPECT_EQ(cluster.replicas[0]->leader_hint(), new_leader);
}

TEST(Lease, SingleReplicaClusterIsItsOwnMajority) {
  Cluster cluster(1);
  EXPECT_EQ(cluster.run_interval(0), 0);
  EXPECT_EQ(cluster.replicas[0]->term(), 1u);
  EXPECT_TRUE(cluster.replicas[0]->lease_valid(0));
}

}  // namespace
}  // namespace nwlb::dist
