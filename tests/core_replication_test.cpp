// Replication-formulation invariants (Fig. 7) on real topologies.
#include <gtest/gtest.h>

#include "core/replication_lp.h"
#include "core/scenario.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::core {
namespace {

struct Fixture {
  topo::Topology topology;
  traffic::TrafficMatrix tm;
  Scenario scenario;

  explicit Fixture(ScenarioConfig config = {})
      : topology(topo::make_internet2()),
        tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm, config) {}
};

TEST(ReplicationLp, IngressLoadIsOneByConstruction) {
  Fixture f;
  const Assignment a = f.scenario.solve(Architecture::kIngress);
  EXPECT_NEAR(a.load_cost, 1.0, 1e-9);
  EXPECT_NEAR(a.miss_rate, 0.0, 1e-12);
  for (double cov : a.coverage) EXPECT_NEAR(cov, 1.0, 1e-12);
}

TEST(ReplicationLp, CoverageSumsToOne) {
  Fixture f;
  const Assignment a = f.scenario.solve(Architecture::kPathReplicate);
  for (std::size_t c = 0; c < f.scenario.classes().size(); ++c) {
    double total = 0.0;
    for (const auto& share : a.process[c]) total += share.fraction;
    // Offloads appear twice (fwd + rev) at the same fraction.
    double offload = 0.0;
    for (const auto& o : a.offloads[c])
      if (o.direction == nids::Direction::kForward) offload += o.fraction;
    EXPECT_NEAR(total + offload, 1.0, 1e-6);
  }
}

TEST(ReplicationLp, ArchitectureOrdering) {
  // More freedom can only help: Replicate <= NoReplicate <= Ingress = 1.
  Fixture f;
  const double ingress = f.scenario.solve(Architecture::kIngress).load_cost;
  const double path = f.scenario.solve(Architecture::kPathNoReplicate).load_cost;
  const double replicate = f.scenario.solve(Architecture::kPathReplicate).load_cost;
  EXPECT_NEAR(ingress, 1.0, 1e-9);
  EXPECT_LE(path, ingress + 1e-7);
  EXPECT_LE(replicate, path + 1e-7);
  // The paper's headline: replication is a substantial improvement.
  EXPECT_LT(replicate, 0.8 * path);
}

TEST(ReplicationLp, ProcessOnlyOnPath) {
  Fixture f;
  const Assignment a = f.scenario.solve(Architecture::kPathNoReplicate);
  for (std::size_t c = 0; c < f.scenario.classes().size(); ++c) {
    const auto nodes = f.scenario.classes()[c].fwd_nodes();
    for (const auto& share : a.process[c])
      EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), share.node));
    EXPECT_TRUE(a.offloads[c].empty());
  }
}

TEST(ReplicationLp, LinkCapRespected) {
  for (double mll : {0.1, 0.4, 0.8}) {
    ScenarioConfig config;
    config.max_link_load = mll;
    Fixture f(config);
    const Assignment a = f.scenario.solve(Architecture::kPathReplicate);
    for (double util : a.link_utilization)
      EXPECT_LE(util, std::max(mll, 1.0 / 3.0) + 1e-6);
  }
}

TEST(ReplicationLp, MonotoneInMaxLinkLoad) {
  double previous = 2.0;
  for (double mll : {0.05, 0.2, 0.4, 0.8}) {
    ScenarioConfig config;
    config.max_link_load = mll;
    Fixture f(config);
    const double cost = f.scenario.solve(Architecture::kPathReplicate).load_cost;
    EXPECT_LE(cost, previous + 1e-7) << "mll=" << mll;
    previous = cost;
  }
}

TEST(ReplicationLp, MonotoneInDatacenterCapacity) {
  double previous = 2.0;
  for (double factor : {1.0, 2.0, 8.0, 16.0}) {
    ScenarioConfig config;
    config.dc_factor = factor;
    Fixture f(config);
    const double cost = f.scenario.solve(Architecture::kPathReplicate).load_cost;
    EXPECT_LE(cost, previous + 1e-7) << "dc=" << factor;
    previous = cost;
  }
}

TEST(ReplicationLp, LoadCostMatchesRecomputedLoads) {
  Fixture f;
  const Assignment a = f.scenario.solve(Architecture::kPathReplicate);
  // The LP objective equals the recomputed max load.
  EXPECT_NEAR(a.load_cost, a.lp.objective, 1e-5);
}

TEST(ReplicationLp, LocalOffloadHelpsWithoutDc) {
  Fixture f;
  const double path = f.scenario.solve(Architecture::kPathNoReplicate).load_cost;
  const double onehop = f.scenario.solve(Architecture::kLocalOffload1).load_cost;
  const double twohop = f.scenario.solve(Architecture::kLocalOffload2).load_cost;
  EXPECT_LE(onehop, path + 1e-7);
  EXPECT_LE(twohop, onehop + 1e-7);
  // Fig. 14: 1-hop offload strictly improves on pure on-path distribution
  // (the gain is modest on the small Internet2 and grows with topology size).
  EXPECT_LT(onehop, path - 1e-9);
}

TEST(ReplicationLp, AugmentedBeatsPlainPath) {
  Fixture f;
  const double path = f.scenario.solve(Architecture::kPathNoReplicate).load_cost;
  const double augmented = f.scenario.solve(Architecture::kPathAugmented).load_cost;
  EXPECT_LT(augmented, path);
}

TEST(ReplicationLp, DcPlusOneHopAtLeastAsGoodAsDcOnly) {
  Fixture f;
  const double dc = f.scenario.solve(Architecture::kPathReplicate).load_cost;
  const double combo = f.scenario.solve(Architecture::kDcPlusOneHop).load_cost;
  EXPECT_LE(combo, dc + 1e-7);
}

TEST(ReplicationLp, PiecewiseLinkCostFeasibleAndBounded) {
  Fixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  ReplicationOptions opts;
  opts.link_cost = LinkCostModel::kPiecewise;
  const ReplicationLp formulation(input, opts);
  const Assignment a = formulation.solve();
  // Soft caps can only do at least as well on compute load.
  const Assignment hard = ReplicationLp(input).solve();
  EXPECT_LE(a.load_cost, hard.load_cost + 1e-6);
}

TEST(ReplicationLp, ZeroMaxLinkLoadAddsNoLinkTraffic) {
  ScenarioConfig config;
  config.max_link_load = 0.0;  // Nothing above background is allowed.
  Fixture f(config);
  const Assignment a = f.scenario.solve(Architecture::kPathReplicate);
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  // No WAN link may carry any replication byte; utilization == background.
  for (std::size_t l = 0; l < a.link_utilization.size(); ++l)
    EXPECT_NEAR(a.link_utilization[l],
                input.background_bytes[l] / input.link_capacity[l], 1e-9);
  // The DC can still absorb traffic from classes passing its attachment PoP
  // (a co-located cluster crosses no WAN link), so load can only improve.
  const Assignment path = f.scenario.solve(Architecture::kPathNoReplicate);
  EXPECT_LE(a.load_cost, path.load_cost + 1e-7);
}

TEST(ReplicationLp, DcAccessLinkCapsIntake) {
  // With a finite DC uplink, total replicated bytes into the cluster obey
  // MaxLinkLoad on that uplink; shrinking the uplink raises the load cost.
  Fixture f;
  const ProblemInput base = f.scenario.problem(Architecture::kPathReplicate);
  const Assignment normal = ReplicationLp(base).solve();
  EXPECT_LE(normal.dc_access_utilization, base.max_link_load + 1e-6);

  ProblemInput tight = base;
  tight.dc_access_capacity = base.dc_access_capacity / 10.0;
  const Assignment constrained = ReplicationLp(tight).solve();
  EXPECT_LE(constrained.dc_access_utilization, tight.max_link_load + 1e-6);
  EXPECT_GE(constrained.load_cost, normal.load_cost - 1e-9);

  ProblemInput uncapped = base;
  uncapped.dc_access_capacity = 0.0;  // Disabled.
  const Assignment free = ReplicationLp(uncapped).solve();
  EXPECT_LE(free.load_cost, normal.load_cost + 1e-7);
  EXPECT_DOUBLE_EQ(free.dc_access_utilization, 0.0);
}

TEST(ReplicationLp, AccessUtilizationMonotoneInMll) {
  Fixture f;
  ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  double previous_load = 2.0;
  for (double mll : {0.1, 0.4, 0.8}) {
    input.max_link_load = mll;
    const Assignment a = ReplicationLp(input).solve();
    EXPECT_LE(a.dc_access_utilization, mll + 1e-6);
    EXPECT_LE(a.load_cost, previous_load + 1e-7);
    previous_load = a.load_cost;
  }
}

TEST(ReplicationLp, WarmStartAcrossTrafficShift) {
  Fixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const ReplicationLp formulation(input);
  const Assignment cold = formulation.solve();

  traffic::TrafficMatrix shifted = f.tm;
  shifted.scale(1.2);
  f.scenario.set_traffic(shifted);
  const ProblemInput input2 = f.scenario.problem(Architecture::kPathReplicate);
  const ReplicationLp formulation2(input2);
  const Assignment warm = formulation2.solve({}, &cold.lp.basis);
  const Assignment cold2 = formulation2.solve();
  EXPECT_NEAR(warm.load_cost, cold2.load_cost, 1e-6);
  EXPECT_LE(warm.lp.iterations + warm.lp.phase1_iterations,
            cold2.lp.iterations + cold2.lp.phase1_iterations);
}

TEST(ReplicationLp, ValidationCatchesBadInput) {
  Fixture f;
  ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  input.max_link_load = 2.0;
  EXPECT_THROW(ReplicationLp{input}, std::invalid_argument);
  ProblemInput input2 = f.scenario.problem(Architecture::kPathReplicate);
  input2.link_capacity.pop_back();
  EXPECT_THROW(ReplicationLp{input2}, std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::core
