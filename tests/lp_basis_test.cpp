// Sparse LU / PFI-update tests: factorize random sparse bases and compare
// FTRAN/BTRAN against a dense Gaussian-elimination reference.
#include "lp/basis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace nwlb::lp {
namespace {

using nwlb::util::Rng;

// Dense reference: solves M x = b by Gaussian elimination w/ partial pivot.
std::vector<double> dense_solve(std::vector<std::vector<double>> M, std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(M[i][k]) > std::abs(M[piv][k])) piv = i;
    std::swap(M[k], M[piv]);
    std::swap(b[k], b[piv]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = M[i][k] / M[k][k];
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) M[i][j] -= f * M[k][j];
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double v = b[i];
    for (std::size_t j = i + 1; j < n; ++j) v -= M[i][j] * x[j];
    x[i] = v / M[i][i];
  }
  return x;
}

// Builds an AugmentedMatrix whose structural part is a random sparse,
// well-conditioned m x m matrix (diagonally dominated), returns the dense
// copy alongside.
struct RandomBasisCase {
  AugmentedMatrix matrix;
  std::vector<std::vector<double>> dense;  // m x m structural columns.
};

RandomBasisCase make_random_case(int m, double density, Rng& rng) {
  RandomBasisCase rc;
  rc.matrix.num_rows = m;
  rc.matrix.num_structural = m;
  rc.matrix.col_ptr.assign(1, 0);
  rc.dense.assign(static_cast<std::size_t>(m),
                  std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      double v = 0.0;
      if (i == j) {
        v = 3.0 + rng.uniform();  // Dominant diagonal keeps it invertible.
      } else if (rng.bernoulli(density)) {
        v = rng.uniform(-1.0, 1.0);
      }
      if (v != 0.0) {
        rc.matrix.row_idx.push_back(i);
        rc.matrix.value.push_back(v);
        rc.dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      }
    }
    rc.matrix.col_ptr.push_back(static_cast<int>(rc.matrix.row_idx.size()));
  }
  return rc;
}

TEST(AugmentedMatrix, LogicalColumnsAreUnitVectors) {
  AugmentedMatrix m;
  m.num_rows = 3;
  m.num_structural = 0;
  m.col_ptr = {0};
  std::vector<double> out(3, 0.0);
  m.scatter(/*col=*/1, 2.0, out);  // Logical column for row 1.
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(m.dot(2, std::vector<double>{5, 6, 7}), 7.0);
}

TEST(BasisFactor, IdentityBasis) {
  AugmentedMatrix m;
  m.num_rows = 4;
  m.num_structural = 0;
  m.col_ptr = {0};
  BasisFactor f;
  const std::vector<int> basic{0, 1, 2, 3};
  ASSERT_TRUE(f.factorize(m, basic, 1e-10).ok);
  std::vector<double> x{1, 2, 3, 4};
  f.ftran(x);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
  f.btran(x);
  EXPECT_DOUBLE_EQ(x[3], 4.0);
}

TEST(BasisFactor, FtranMatchesDense) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 3 + static_cast<int>(rng.below(20));
    auto rc = make_random_case(m, 0.3, rng);
    std::vector<int> basic(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) basic[static_cast<std::size_t>(i)] = i;
    BasisFactor f;
    ASSERT_TRUE(f.factorize(rc.matrix, basic, 1e-10).ok);

    std::vector<double> b(static_cast<std::size_t>(m));
    for (auto& v : b) v = rng.uniform(-5, 5);
    auto x = b;
    f.ftran(x);
    const auto expected = dense_solve(rc.dense, b);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-8)
          << "trial " << trial << " m=" << m;
  }
}

TEST(BasisFactor, BtranMatchesDenseTranspose) {
  Rng rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 3 + static_cast<int>(rng.below(16));
    auto rc = make_random_case(m, 0.35, rng);
    std::vector<int> basic(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) basic[static_cast<std::size_t>(i)] = i;
    BasisFactor f;
    ASSERT_TRUE(f.factorize(rc.matrix, basic, 1e-10).ok);

    std::vector<double> c(static_cast<std::size_t>(m));
    for (auto& v : c) v = rng.uniform(-5, 5);
    auto y = c;
    f.btran(y);
    // Dense transpose solve.
    auto mt = rc.dense;
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < i; ++j)
        std::swap(mt[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  mt[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]);
    const auto expected = dense_solve(mt, c);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(BasisFactor, MixedLogicalAndStructuralColumns) {
  Rng rng(303);
  const int m = 12;
  auto rc = make_random_case(m, 0.3, rng);
  // Half structural, half logical.
  std::vector<int> basic;
  for (int i = 0; i < m; ++i)
    basic.push_back(i % 2 == 0 ? i : rc.matrix.num_structural + i);
  BasisFactor f;
  ASSERT_TRUE(f.factorize(rc.matrix, basic, 1e-10).ok);
  // Verify B * ftran(b) == b by explicit reconstruction.
  std::vector<double> b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.uniform(-2, 2);
  auto x = b;
  f.ftran(x);
  std::vector<double> recon(static_cast<std::size_t>(m), 0.0);
  for (int pos = 0; pos < m; ++pos)
    rc.matrix.scatter(basic[static_cast<std::size_t>(pos)], x[static_cast<std::size_t>(pos)],
                      recon);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(recon[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-8);
}

TEST(BasisFactor, UpdateMatchesRefactorization) {
  Rng rng(404);
  const int m = 15;
  auto rc = make_random_case(m, 0.3, rng);
  std::vector<int> basic(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) basic[static_cast<std::size_t>(i)] = i;
  BasisFactor f;
  ASSERT_TRUE(f.factorize(rc.matrix, basic, 1e-10).ok);

  // Replace basis position 4 by the logical column of row 7.
  const int entering = rc.matrix.num_structural + 7;
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  rc.matrix.scatter(entering, 1.0, w);
  f.ftran(w);
  ASSERT_TRUE(f.update(4, w, 1e-10));
  basic[4] = entering;

  BasisFactor fresh;
  ASSERT_TRUE(fresh.factorize(rc.matrix, basic, 1e-10).ok);

  std::vector<double> b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.uniform(-3, 3);
  auto x1 = b, x2 = b;
  f.ftran(x1);
  fresh.ftran(x2);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2[static_cast<std::size_t>(i)], 1e-7);

  auto y1 = b, y2 = b;
  f.btran(y1);
  fresh.btran(y2);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-7);
}

TEST(BasisFactor, SequenceOfUpdates) {
  Rng rng(505);
  const int m = 20;
  auto rc = make_random_case(m, 0.25, rng);
  std::vector<int> basic(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) basic[static_cast<std::size_t>(i)] = i;
  BasisFactor f;
  ASSERT_TRUE(f.factorize(rc.matrix, basic, 1e-10).ok);
  // Swap five positions to logicals, one by one, through PFI updates.
  for (int k = 0; k < 5; ++k) {
    const int pos = 2 * k;
    const int entering = rc.matrix.num_structural + (m - 1 - k);
    std::vector<double> w(static_cast<std::size_t>(m), 0.0);
    rc.matrix.scatter(entering, 1.0, w);
    f.ftran(w);
    ASSERT_TRUE(f.update(pos, w, 1e-10));
    basic[static_cast<std::size_t>(pos)] = entering;
  }
  EXPECT_EQ(f.num_updates(), 5);
  BasisFactor fresh;
  ASSERT_TRUE(fresh.factorize(rc.matrix, basic, 1e-10).ok);
  std::vector<double> b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.uniform(-1, 1);
  auto x1 = b, x2 = b;
  f.ftran(x1);
  fresh.ftran(x2);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2[static_cast<std::size_t>(i)], 1e-6);
}

TEST(BasisFactor, SingularBasisIsRepairedWithLogicals) {
  // Two identical columns: one slot must be repaired with a logical.
  AugmentedMatrix m;
  m.num_rows = 2;
  m.num_structural = 2;
  // Column 0 and 1 both equal (1, 1)^T.
  m.col_ptr = {0, 2, 4};
  m.row_idx = {0, 1, 0, 1};
  m.value = {1, 1, 1, 1};
  BasisFactor f;
  const std::vector<int> basic{0, 1};
  const auto result = f.factorize(m, basic, 1e-10);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.defective_positions.size(), 1u);
  ASSERT_EQ(result.unpivoted_rows.size(), 1u);
  // After mirroring the repair, FTRAN must solve the repaired basis.
  std::vector<int> repaired = basic;
  repaired[static_cast<std::size_t>(result.defective_positions[0])] =
      m.num_structural + result.unpivoted_rows[0];
  std::vector<double> b{3.0, 5.0};
  auto x = b;
  f.ftran(x);
  std::vector<double> recon(2, 0.0);
  for (int pos = 0; pos < 2; ++pos)
    m.scatter(repaired[static_cast<std::size_t>(pos)], x[static_cast<std::size_t>(pos)], recon);
  EXPECT_NEAR(recon[0], 3.0, 1e-9);
  EXPECT_NEAR(recon[1], 5.0, 1e-9);
}

TEST(BasisFactor, FactorNonzerosReported) {
  Rng rng(606);
  auto rc = make_random_case(8, 0.4, rng);
  std::vector<int> basic{0, 1, 2, 3, 4, 5, 6, 7};
  BasisFactor f;
  ASSERT_TRUE(f.factorize(rc.matrix, basic, 1e-10).ok);
  EXPECT_GE(f.factor_nonzeros(), 8u);
  EXPECT_EQ(f.dimension(), 8);
}

}  // namespace
}  // namespace nwlb::lp
