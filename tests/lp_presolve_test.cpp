// Presolve and scaling: reductions must never change the optimum.
#include <gtest/gtest.h>

#include "lp/presolve.h"
#include "lp/revised_simplex.h"
#include "lp/scaling.h"
#include "util/rng.h"

namespace nwlb::lp {
namespace {

TEST(Presolve, RemovesFixedVariables) {
  Model m;
  const VarId x = m.add_variable(3, 3, 5, "fixed");
  const VarId y = m.add_variable(0, kInf, 1, "free");
  const RowId r = m.add_row(Sense::kGreaterEqual, 10);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1);
  const Presolved p = presolve(m);
  ASSERT_EQ(p.status, PresolveStatus::kReduced);
  // The cascade dissolves the whole problem: x is fixed, the row becomes
  // the singleton y >= 7, and y's now-empty column pins it at that bound.
  EXPECT_EQ(p.vars_removed(), 2);
  EXPECT_EQ(p.model.num_variables(), 0);
  const Solution s = solve_with_presolve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 15 + 7, 1e-8);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 7.0, 1e-9);
}

TEST(Presolve, SingletonRowTightensBounds) {
  Model m;
  const VarId x = m.add_variable(0, 10, -1);
  const RowId r = m.add_row(Sense::kLessEqual, 4);
  m.add_coefficient(r, x, 2);  // 2x <= 4 -> x <= 2.
  const Presolved p = presolve(m);
  ASSERT_EQ(p.status, PresolveStatus::kReduced);
  EXPECT_EQ(p.rows_removed(), 1);
  // The whole problem dissolves into a bound + empty column.
  const Solution s = solve_with_presolve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Presolve, DetectsInfeasibleSingletons) {
  Model m;
  const VarId x = m.add_variable(0, 1, 0);
  const RowId r = m.add_row(Sense::kGreaterEqual, 5);
  m.add_coefficient(r, x, 1);
  EXPECT_EQ(presolve(m).status, PresolveStatus::kInfeasible);
  EXPECT_EQ(solve_with_presolve(m).status, Status::kInfeasible);
}

TEST(Presolve, DetectsEmptyColumnUnboundedness) {
  Model m;
  m.add_variable(0, kInf, -1);  // Appears nowhere; cost pushes to +inf.
  EXPECT_EQ(presolve(m).status, PresolveStatus::kUnbounded);
}

TEST(Presolve, EmptyRowFeasibilityCheck) {
  Model m;
  const VarId x = m.add_variable(2, 2, 1);  // Fixed -> substituted out.
  const RowId r = m.add_row(Sense::kEqual, 5);
  m.add_coefficient(r, x, 1);  // Becomes empty row "0 = 3": infeasible.
  EXPECT_EQ(presolve(m).status, PresolveStatus::kInfeasible);
}

TEST(Presolve, FullySolvedByPresolve) {
  Model m;
  m.add_variable(1, 1, 2, "a");
  m.add_variable(0, 4, 3, "b");  // Empty column, cost > 0 -> pinned at 0.
  const Solution s = solve_with_presolve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

class PresolveEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PresolveEquivalence, SameOptimumAsDirectSolve) {
  nwlb::util::Rng rng(GetParam() * 977);
  Model m;
  const int n = 4 + static_cast<int>(rng.below(12));
  std::vector<VarId> vars;
  for (int j = 0; j < n; ++j) {
    // Mix of fixed, bounded, and unbounded variables.
    const double pick = rng.uniform();
    if (pick < 0.2) {
      const double v = rng.uniform(-1, 1);
      vars.push_back(m.add_variable(v, v, rng.uniform(-1, 1)));
    } else {
      vars.push_back(m.add_variable(0, rng.uniform(0.5, 3), rng.uniform(-1, 1)));
    }
  }
  const int k = 2 + static_cast<int>(rng.below(6));
  for (int i = 0; i < k; ++i) {
    const int width = 1 + static_cast<int>(rng.below(3));  // Singletons likely.
    const RowId r = m.add_row(rng.bernoulli(0.5) ? Sense::kLessEqual : Sense::kGreaterEqual,
                              rng.uniform(0, 3));
    for (int w = 0; w < width; ++w)
      m.add_coefficient(r, vars[rng.below(static_cast<std::uint64_t>(n))],
                        rng.uniform(-2, 2));
  }
  const Solution direct = solve_revised(m);
  const Solution reduced = solve_with_presolve(m);
  ASSERT_EQ(direct.status, reduced.status);
  if (direct.status == Status::kOptimal) {
    EXPECT_NEAR(direct.objective, reduced.objective, 1e-6);
    EXPECT_LE(m.max_violation(reduced.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PresolveEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Scaling, ReducesCoefficientSpread) {
  Model m;
  const VarId x = m.add_variable(0, kInf, 1);
  const VarId y = m.add_variable(0, kInf, 1e6);
  const RowId r1 = m.add_row(Sense::kGreaterEqual, 1e6);
  m.add_coefficient(r1, x, 1e6);
  m.add_coefficient(r1, y, 1e-3);
  const RowId r2 = m.add_row(Sense::kLessEqual, 10);
  m.add_coefficient(r2, x, 1e-4);
  m.add_coefficient(r2, y, 100);
  const double before = coefficient_spread(m);
  const ScaledModel scaled = scale_model(m);
  EXPECT_LT(coefficient_spread(scaled.model), before);
}

TEST(Scaling, SolutionMapsBack) {
  Model m;
  const VarId x = m.add_variable(0, 2000, -1e-3);
  const VarId y = m.add_variable(0, 3, -2000);
  const RowId r = m.add_row(Sense::kLessEqual, 4000);
  m.add_coefficient(r, x, 1);
  m.add_coefficient(r, y, 1000);
  const Solution direct = solve_revised(m);
  const ScaledModel scaled = scale_model(m);
  const Solution inner = solve_revised(scaled.model);
  ASSERT_EQ(direct.status, Status::kOptimal);
  ASSERT_EQ(inner.status, Status::kOptimal);
  const auto restored = scaled.restore_primal(inner.x);
  EXPECT_NEAR(m.objective_value(restored), direct.objective, 1e-6 * std::abs(direct.objective));
  EXPECT_LE(m.max_violation(restored), 1e-5);
}

class ScalingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingEquivalence, PreservesOptima) {
  nwlb::util::Rng rng(GetParam() * 313);
  Model m;
  const int n = 3 + static_cast<int>(rng.below(8));
  std::vector<VarId> vars;
  for (int j = 0; j < n; ++j) {
    const double magnitude = std::pow(10.0, rng.uniform(-3, 3));
    vars.push_back(m.add_variable(0, 5 * magnitude, rng.uniform(-1, 1) / magnitude));
  }
  for (int i = 0; i < 4; ++i) {
    const RowId r = m.add_row(Sense::kLessEqual, std::pow(10.0, rng.uniform(0, 3)));
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.6))
        m.add_coefficient(r, vars[static_cast<std::size_t>(j)],
                          rng.uniform(0.1, 2) * std::pow(10.0, rng.uniform(-2, 2)));
  }
  const Solution direct = solve_revised(m);
  const ScaledModel scaled = scale_model(m);
  const Solution inner = solve_revised(scaled.model);
  ASSERT_EQ(direct.status, Status::kOptimal);
  ASSERT_EQ(inner.status, Status::kOptimal);
  const double tol = 1e-6 * std::max(1.0, std::abs(direct.objective));
  EXPECT_NEAR(m.objective_value(scaled.restore_primal(inner.x)), direct.objective, tol);
}

INSTANTIATE_TEST_SUITE_P(Random, ScalingEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace nwlb::lp
