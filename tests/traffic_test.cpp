#include <gtest/gtest.h>

#include "topo/topology.h"
#include "traffic/classes.h"
#include "traffic/matrix.h"
#include "traffic/variability.h"
#include "util/stats.h"

namespace nwlb::traffic {
namespace {

TEST(TrafficMatrix, BasicOps) {
  TrafficMatrix tm(3);
  tm.set_volume(0, 1, 5.0);
  tm.set_volume(1, 2, 7.0);
  EXPECT_DOUBLE_EQ(tm.volume(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(tm.total(), 12.0);
  tm.scale(2.0);
  EXPECT_DOUBLE_EQ(tm.total(), 24.0);
  EXPECT_THROW(tm.set_volume(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(tm.set_volume(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(tm.volume(0, 9), std::out_of_range);
}

TEST(Gravity, TotalsAndProportionality) {
  const auto t = topo::make_internet2();
  const TrafficMatrix tm = gravity_matrix(t.graph, 8e6);
  EXPECT_NEAR(tm.total(), 8e6, 1.0);
  // New York (10) <-> LA (2) should dominate Sunnyvale (1) <-> Indy (7).
  EXPECT_GT(tm.volume(10, 2), tm.volume(1, 7));
  // Gravity symmetry: volume(i,j) == volume(j,i) for equal populations only;
  // in general ratio follows populations exactly.
  const double expected_ratio = t.graph.population(10) / t.graph.population(1);
  EXPECT_NEAR(tm.volume(10, 2) / tm.volume(1, 2), expected_ratio, 1e-6);
}

TEST(Gravity, PaperScaling) {
  EXPECT_NEAR(paper_total_sessions(11), 8e6, 1e-6);
  EXPECT_NEAR(paper_total_sessions(22), 16e6, 1e-6);
}

TEST(LinkTraffic, ConservesBytesAndProvisioning) {
  const auto t = topo::make_internet2();
  const topo::Routing routing(t.graph);
  const TrafficMatrix tm = gravity_matrix(t.graph, 1e5);
  const auto load = link_traffic(routing, tm, 1000.0);
  ASSERT_EQ(load.size(), static_cast<std::size_t>(t.graph.num_directed_links()));
  double total = 0.0;
  for (double v : load) total += v;
  EXPECT_GT(total, 0.0);
  const auto caps = provision_link_capacities(load, 3.0);
  double max_util = 0.0;
  for (std::size_t l = 0; l < load.size(); ++l) max_util = std::max(max_util, load[l] / caps[l]);
  EXPECT_NEAR(max_util, 1.0 / 3.0, 1e-9);  // Busiest link at exactly 0.3.
  EXPECT_THROW(provision_link_capacities(load, 0.0), std::invalid_argument);
}

TEST(Classes, OnePerOrderedPair) {
  const auto t = topo::make_internet2();
  const topo::Routing routing(t.graph);
  const TrafficMatrix tm = gravity_matrix(t.graph, 8e6);
  const auto classes = build_classes(routing, tm);
  EXPECT_EQ(classes.size(), 110u);  // 11 * 10.
  EXPECT_NEAR(total_sessions(classes), 8e6, 1.0);
  for (const auto& c : classes) {
    EXPECT_TRUE(c.symmetric());
    EXPECT_EQ(c.fwd_path.front(), c.ingress);
    EXPECT_EQ(c.fwd_path.back(), c.egress);
    EXPECT_EQ(c.common_nodes(), c.fwd_nodes());
  }
}

TEST(Classes, AsymmetryBreaksSymmetry) {
  const auto t = topo::make_internet2();
  const topo::Routing routing(t.graph);
  const TrafficMatrix tm = gravity_matrix(t.graph, 8e6);
  auto classes = build_classes(routing, tm);
  const topo::AsymmetricRouteGenerator generator(routing);
  nwlb::util::Rng rng(11);
  apply_asymmetry(classes, generator, 0.3, rng);
  int asymmetric = 0;
  for (const auto& c : classes)
    if (!c.symmetric()) ++asymmetric;
  EXPECT_GT(asymmetric, static_cast<int>(classes.size()) / 2);
}

TEST(Classes, CommonNodesIntersect) {
  TrafficClass c;
  c.fwd_path = {0, 1, 2, 3};
  c.rev_path = {5, 2, 1, 6};
  EXPECT_EQ(c.common_nodes(), (std::vector<topo::NodeId>{1, 2}));
}

TEST(Variability, UnitMeanFactors) {
  const auto cdf = abilene_like_factor_cdf();
  // Mean of the inverse CDF over uniform u approximates the factor mean.
  double total = 0.0;
  const int n = 20000;
  nwlb::util::Rng rng(5);
  for (int i = 0; i < n; ++i) total += cdf.inverse(rng.uniform());
  EXPECT_NEAR(total / n, 1.0, 0.05);
}

TEST(Variability, SampledMatricesVaryButPreserveScale) {
  const auto t = topo::make_internet2();
  const TrafficMatrix mean = gravity_matrix(t.graph, 8e6);
  const VariabilityModel model(abilene_like_factor_cdf());
  const auto samples = model.sample_many(mean, 20, 99);
  ASSERT_EQ(samples.size(), 20u);
  std::vector<double> totals;
  for (const auto& tm : samples) totals.push_back(tm.total());
  // Element-wise unit-mean factors keep totals near the mean total.
  EXPECT_NEAR(nwlb::util::mean(totals), 8e6, 8e6 * 0.1);
  // And the samples genuinely differ.
  EXPECT_GT(nwlb::util::stddev(totals), 0.0);
}

TEST(Variability, Deterministic) {
  const auto t = topo::make_internet2();
  const TrafficMatrix mean = gravity_matrix(t.graph, 1e6);
  const VariabilityModel model(abilene_like_factor_cdf());
  const auto a = model.sample_many(mean, 3, 1);
  const auto b = model.sample_many(mean, 3, 1);
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 11; ++i)
      for (int j = 0; j < 11; ++j)
        if (i != j) {
          EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(k)].volume(i, j),
                           b[static_cast<std::size_t>(k)].volume(i, j));
        }
}

}  // namespace
}  // namespace nwlb::traffic
