// Property tests for the batch decide kernels: every backend (gallop, avx2
// when the host supports it, and the dispatch default) must be bit-identical
// to the scalar oracle over randomized configs × 100k+ hash probes,
// including exact segment-boundary edges and the run-of-equal-hashes shape
// the replay produces.  decide_hashed_repeat must be arithmetic-identical
// to decide_hashed_batch over a run of one hash.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "shim/config.h"
#include "shim/flat_simd.h"
#include "shim/flat_table.h"
#include "shim/shim.h"
#include "util/rng.h"

namespace nwlb::shim {
namespace {

/// Randomized config: random classes, random hash-space partition with
/// gaps, sometimes split per-direction tables (same generator shape as
/// shim_flat_test).
ShimConfig random_config(nwlb::util::Rng& rng) {
  ShimConfig config;
  const int classes = static_cast<int>(rng.range(1, 30));
  for (int c = 0; c < classes; ++c) {
    if (rng.bernoulli(0.2)) continue;
    const bool split_directions = rng.bernoulli(0.3);
    const int num_dirs = split_directions ? 2 : 1;
    for (int d = 0; d < num_dirs; ++d) {
      RangeTable table;
      std::uint64_t cursor = 0;
      while (cursor < kHashSpace) {
        const std::uint64_t max_len = kHashSpace - cursor;
        std::uint64_t len =
            rng.bernoulli(0.3) ? rng.below(1024) + 1 : rng.below(max_len) + 1;
        if (len > max_len) len = max_len;
        const double coin = rng.uniform();
        if (coin < 0.4)
          table.add(HashRange{cursor, cursor + len, Action::process()});
        else if (coin < 0.7)
          table.add(HashRange{cursor, cursor + len,
                              Action::replicate(static_cast<int>(rng.below(16)))});
        cursor += len;
      }
      if (split_directions)
        config.set_table(c, d == 0 ? nids::Direction::kForward : nids::Direction::kReverse,
                         table);
      else
        config.set_table(c, table);
    }
  }
  return config;
}

/// Probe hashes covering the hard cases: the exact begin of every range,
/// ±1 around it, both hash-space extremes, plus uniform random fill.
std::vector<std::uint32_t> probe_hashes(const ShimConfig& config, nwlb::util::Rng& rng,
                                        std::size_t target) {
  std::vector<std::uint32_t> hashes;
  hashes.push_back(0);
  hashes.push_back(0xffffffffu);
  config.for_each_table([&](int, nids::Direction, const RangeTable& table) {
    for (const HashRange& range : table.ranges()) {
      for (std::int64_t delta : {-1, 0, 1}) {
        const std::int64_t begin = static_cast<std::int64_t>(range.begin) + delta;
        const std::int64_t end = static_cast<std::int64_t>(range.end) + delta;
        if (begin >= 0 && begin <= 0xffffffff)
          hashes.push_back(static_cast<std::uint32_t>(begin));
        if (end >= 0 && end <= 0xffffffff)
          hashes.push_back(static_cast<std::uint32_t>(end));
      }
    }
  });
  while (hashes.size() < target) hashes.push_back(static_cast<std::uint32_t>(rng()));
  return hashes;
}

std::vector<simd::Backend> backends_under_test() {
  std::vector<simd::Backend> backends = {simd::Backend::kGallop};
  if (simd::avx2_supported()) backends.push_back(simd::Backend::kAvx2);
  return backends;
}

TEST(ShimSimd, AllBackendsMatchScalarOracleOnRandomConfigs) {
  nwlb::util::Rng rng(0x51d3);
  std::size_t probes_checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const ShimConfig config = random_config(rng);
    const FlatConfig flat(config);
    const std::vector<std::uint32_t> hashes = probe_hashes(config, rng, 10000);
    std::vector<Action> want(hashes.size());
    std::vector<Action> got(hashes.size());
    for (int class_id = -1; class_id < 32; ++class_id) {
      for (const auto dir : {nids::Direction::kForward, nids::Direction::kReverse}) {
        flat.lookup_batch_with(simd::Backend::kScalar, class_id, dir, hashes, want);
        // The scalar batch must itself agree with single lookups.
        for (std::size_t i = 0; i < 16 && i < hashes.size(); ++i)
          ASSERT_EQ(want[i], flat.lookup(class_id, dir, hashes[i]));
        for (const simd::Backend backend : backends_under_test()) {
          flat.lookup_batch_with(backend, class_id, dir, hashes, got);
          for (std::size_t i = 0; i < hashes.size(); ++i)
            ASSERT_EQ(got[i], want[i])
                << simd::backend_name(backend) << " trial=" << trial
                << " class=" << class_id << " hash=" << hashes[i];
          probes_checked += hashes.size();
        }
      }
    }
  }
  EXPECT_GE(probes_checked, 100000u);
}

TEST(ShimSimd, EqualHashRunsMatchScalar) {
  // The replay's batch shape: long runs of one hash value (per-session
  // direction), which is the gallop kernel's fast case.
  nwlb::util::Rng rng(0x9a110);
  const ShimConfig config = random_config(rng);
  const FlatConfig flat(config);
  std::vector<std::uint32_t> hashes;
  while (hashes.size() < 20000) {
    const auto hash = static_cast<std::uint32_t>(rng());
    const std::size_t run = 1 + rng.below(24);
    for (std::size_t i = 0; i < run; ++i) hashes.push_back(hash);
  }
  std::vector<Action> want(hashes.size());
  std::vector<Action> got(hashes.size());
  for (int class_id = 0; class_id < 8; ++class_id) {
    flat.lookup_batch_with(simd::Backend::kScalar, class_id, nids::Direction::kForward,
                           hashes, want);
    for (const simd::Backend backend : backends_under_test()) {
      flat.lookup_batch_with(backend, class_id, nids::Direction::kForward, hashes, got);
      for (std::size_t i = 0; i < hashes.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << simd::backend_name(backend) << " i=" << i;
    }
  }
}

TEST(ShimSimd, DispatchMatchesScalarAndReportsABackend) {
  nwlb::util::Rng rng(0xd15c);
  const ShimConfig config = random_config(rng);
  const FlatConfig flat(config);
  std::vector<std::uint32_t> hashes;
  for (int i = 0; i < 4096; ++i) hashes.push_back(static_cast<std::uint32_t>(rng()));
  std::vector<Action> want(hashes.size());
  std::vector<Action> got(hashes.size());
  flat.lookup_batch_with(simd::Backend::kScalar, 1, nids::Direction::kForward, hashes, want);
  flat.lookup_batch(1, nids::Direction::kForward, hashes, got);
  for (std::size_t i = 0; i < hashes.size(); ++i) ASSERT_EQ(got[i], want[i]);
  EXPECT_NE(simd::backend_name(simd::active_backend()), nullptr);
}

TEST(ShimSimd, UninstalledSlotsResolveToIgnoreOnEveryBackend) {
  const FlatConfig flat{};  // Empty: every lookup is ignore.
  std::vector<std::uint32_t> hashes(100, 42);
  std::vector<Action> got(hashes.size());
  for (const simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kGallop, simd::Backend::kAvx2}) {
    flat.lookup_batch_with(backend, 3, nids::Direction::kForward, hashes, got);
    for (const Action& action : got) ASSERT_EQ(action, Action::ignore());
  }
}

TEST(ShimSimd, DecideHashedRepeatMatchesBatch) {
  nwlb::util::Rng rng(0x2e9ea7);
  const ShimConfig config = random_config(rng);
  Shim shim(0);
  // nwlb-analyze: allow(raw-shim-install) -- shim-level unit test.
  shim.install(config);
  for (int trial = 0; trial < 200; ++trial) {
    const int class_id = static_cast<int>(rng.range(-1, 32));
    const auto dir =
        rng.bernoulli(0.5) ? nids::Direction::kForward : nids::Direction::kReverse;
    const auto hash = static_cast<std::uint32_t>(rng());
    const std::uint64_t count = rng.below(40);
    ShimStats batch_stats;
    std::vector<std::uint32_t> hashes(count, hash);
    std::vector<Action> actions(count);
    shim.decide_hashed_batch(class_id, dir, hashes, actions, batch_stats);
    ShimStats repeat_stats;
    const Action action = shim.decide_hashed_repeat(class_id, dir, hash, count, repeat_stats);
    for (const Action& a : actions) ASSERT_EQ(a, action);
    EXPECT_EQ(repeat_stats.packets_seen, batch_stats.packets_seen);
    EXPECT_EQ(repeat_stats.decided_process, batch_stats.decided_process);
    EXPECT_EQ(repeat_stats.decided_replicate, batch_stats.decided_replicate);
    EXPECT_EQ(repeat_stats.decided_ignore, batch_stats.decided_ignore);
  }
}

}  // namespace
}  // namespace nwlb::shim
