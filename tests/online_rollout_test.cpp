// The rollout engine and churn accounting: diffs between versioned config
// bundles, skip-identical behaviour, and make-before-break staging into a
// live replay simulator.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "nids/signature.h"
#include "online/rollout.h"
#include "shim/bundle.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::online {
namespace {

struct RolloutFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;
  core::ProblemInput replicate_input;
  core::ProblemInput ingress_input;
  shim::ConfigBundle replicate_bundle;  // Generation 1.
  shim::ConfigBundle ingress_bundle;    // Generation 2, different behaviour.

  RolloutFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        replicate_input(scenario.problem(core::Architecture::kPathReplicate)),
        ingress_input(scenario.problem(core::Architecture::kIngress)),
        replicate_bundle(core::build_bundle(
            replicate_input, core::ReplicationLp(replicate_input).solve(), 1)),
        ingress_bundle(core::build_bundle(
            ingress_input, core::ReplicationLp(ingress_input).solve(), 2)) {}

  sim::ReplaySimulator make_sim() const {
    return sim::ReplaySimulator(replicate_input, replicate_bundle);
  }
  sim::TraceGenerator make_generator() const {
    sim::TraceConfig tc;
    tc.scanners = 0;
    return sim::TraceGenerator(replicate_input.classes, tc, /*seed=*/77);
  }
};

TEST(Churn, IdenticalBundlesMoveNothing) {
  RolloutFixture f;
  const shim::ChurnReport report =
      shim::churn_between(f.replicate_bundle, f.replicate_bundle);
  EXPECT_DOUBLE_EQ(report.moved_fraction, 0.0);
  EXPECT_EQ(report.pops_changed, 0);
  EXPECT_GT(report.tables_compared, 0);
  for (const double moved : report.pop_moved) EXPECT_DOUBLE_EQ(moved, 0.0);
}

TEST(Churn, ArchitectureSwitchMovesHashSpace) {
  RolloutFixture f;
  const shim::ChurnReport report =
      shim::churn_between(f.replicate_bundle, f.ingress_bundle);
  // Ingress-only processing reassigns real hash ranges away from the
  // replication plan: the diff must see it, bounded by the whole space.
  EXPECT_GT(report.moved_fraction, 0.0);
  EXPECT_LE(report.moved_fraction, 1.0);
  EXPECT_GT(report.pops_changed, 0);
  EXPECT_EQ(report.pop_moved.size(), f.replicate_bundle.configs.size());
}

TEST(Churn, GenerationTagAloneIsNotChurn) {
  RolloutFixture f;
  shim::ConfigBundle retagged = f.replicate_bundle;
  retagged.generation = 99;
  EXPECT_DOUBLE_EQ(shim::churn_between(f.replicate_bundle, retagged).moved_fraction,
                   0.0);
}

TEST(Churn, MissingTableActsAsAllIgnore) {
  RolloutFixture f;
  EXPECT_DOUBLE_EQ(shim::moved_fraction(nullptr, nullptr), 0.0);
  // Find any table with a non-ignore action; diffing it against "absent"
  // must move exactly its non-ignore fraction of the space.
  for (const shim::ShimConfig& config : f.replicate_bundle.configs) {
    for (std::size_t c = 0; c < f.replicate_input.classes.size(); ++c) {
      const shim::RangeTable* table =
          config.table(static_cast<int>(c), nids::Direction::kForward);
      if (table == nullptr) continue;
      const double active = table->fraction_of(shim::Action::Kind::kProcess) +
                            table->fraction_of(shim::Action::Kind::kReplicate);
      if (active <= 0.0) continue;
      EXPECT_NEAR(shim::moved_fraction(table, nullptr), active, 1e-9);
      EXPECT_NEAR(shim::moved_fraction(nullptr, table), active, 1e-9);
      EXPECT_DOUBLE_EQ(shim::moved_fraction(table, table), 0.0);
      return;
    }
  }
  FAIL() << "fixture produced no active range table";
}

TEST(RolloutEngine, SkipsIdenticalConfigsButAdoptsTheTag) {
  RolloutFixture f;
  sim::ReplaySimulator sim = f.make_sim();
  RolloutEngine engine(f.replicate_bundle);

  shim::ConfigBundle retagged = f.replicate_bundle;
  retagged.generation = 2;
  const RolloutReport report = engine.apply(sim, retagged);
  EXPECT_FALSE(report.installed);
  EXPECT_EQ(report.generation, 2u);
  EXPECT_DOUBLE_EQ(report.churn.moved_fraction, 0.0);
  EXPECT_EQ(engine.skipped(), 1u);
  EXPECT_EQ(engine.installs(), 0u);
  // The diff baseline adopts the tag; the data plane keeps generation 1.
  EXPECT_EQ(engine.current().generation, 2u);
  EXPECT_EQ(sim.active_generation(), 1u);
  EXPECT_EQ(sim.num_generations(), 1u);
}

TEST(RolloutEngine, InstallsChangedBundleMakeBeforeBreak) {
  RolloutFixture f;
  sim::ReplaySimulator sim = f.make_sim();
  sim::TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(50), generator);

  RolloutOptions opts;
  opts.drain_sessions = 100;
  RolloutEngine engine(f.replicate_bundle, opts);
  const RolloutReport report = engine.apply(sim, f.ingress_bundle);
  EXPECT_TRUE(report.installed);
  EXPECT_EQ(report.activate_at, 150u);
  EXPECT_GT(report.churn.moved_fraction, 0.0);
  EXPECT_EQ(engine.installs(), 1u);
  EXPECT_EQ(engine.current(), f.ingress_bundle);

  // Both generations coexist; the old one still serves until the cursor
  // reaches the activation point.
  EXPECT_EQ(sim.num_generations(), 2u);
  EXPECT_EQ(sim.active_generation(), 1u);
  sim.replay(generator.generate(120), generator);
  EXPECT_EQ(sim.active_generation(), 2u);
  EXPECT_EQ(sim.num_generations(), 1u);  // Old generation fully drained.
}

TEST(RolloutEngine, SkipIdenticalCanBeDisabled) {
  RolloutFixture f;
  sim::ReplaySimulator sim = f.make_sim();
  RolloutOptions opts;
  opts.skip_identical = false;
  RolloutEngine engine(f.replicate_bundle, opts);
  shim::ConfigBundle retagged = f.replicate_bundle;
  retagged.generation = 2;
  const RolloutReport report = engine.apply(sim, retagged);
  EXPECT_TRUE(report.installed);
  EXPECT_EQ(engine.installs(), 1u);
  EXPECT_EQ(sim.active_generation(), 2u);
}

}  // namespace
}  // namespace nwlb::online
