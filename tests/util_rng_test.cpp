#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace nwlb::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsRange) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_GT(c, 700);  // Roughly uniform.
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.range(2, 1), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double total = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    total += v;
    sq += v * v;
  }
  EXPECT_NEAR(total / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.pareto(1.0, 1.2, 50.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
  const std::vector<double> bad{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(bad), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, DeriveSeedDecorrelates) {
  const auto a = derive_seed(99, 0);
  const auto b = derive_seed(99, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, derive_seed(99, 0));
}

}  // namespace
}  // namespace nwlb::util
