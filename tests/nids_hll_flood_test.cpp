// HyperLogLog sketches and flood (DoS) detection.
#include <gtest/gtest.h>

#include "nids/flood.h"
#include "nids/hll.h"
#include "util/rng.h"

namespace nwlb::nids {
namespace {

TEST(HyperLogLog, EmptyEstimatesZero) {
  const HyperLogLog hll(10);
  EXPECT_NEAR(hll.estimate(), 0.0, 1e-9);
  EXPECT_EQ(hll.memory_bytes(), 1024u);
}

TEST(HyperLogLog, SmallCountsAreExactish) {
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < 50; ++i) hll.add(i * 7919);
  EXPECT_NEAR(hll.estimate(), 50.0, 3.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 100; ++rep)
    for (std::uint64_t i = 0; i < 20; ++i) hll.add(i);
  EXPECT_NEAR(hll.estimate(), 20.0, 2.0);
}

class HllAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(HllAccuracy, WithinExpectedError) {
  const int n = GetParam();
  HyperLogLog hll(11);  // ~2.3% standard error.
  nwlb::util::Rng rng(static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) hll.add(rng());
  const double error = std::abs(hll.estimate() - n) / n;
  EXPECT_LT(error, 0.10) << "n=" << n;  // 4+ sigma headroom.
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         ::testing::Values(1000, 5000, 20000, 100000, 400000));

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(10), b(10), u(10);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    a.add(i);
    u.add(i);
  }
  for (std::uint64_t i = 2000; i < 6000; ++i) {
    b.add(i);
    u.add(i);
  }
  a.merge(b);
  EXPECT_NEAR(a.estimate(), u.estimate(), 1e-9);  // Register-exact equality.
  HyperLogLog other(12);
  EXPECT_THROW(a.merge(other), std::invalid_argument);
}

TEST(HyperLogLog, PrecisionValidation) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(17), std::invalid_argument);
  HyperLogLog hll(6);
  hll.add(1);
  hll.clear();
  EXPECT_NEAR(hll.estimate(), 0.0, 1e-9);
}

TEST(FloodDetector, CountsDistinctSources) {
  FloodDetector d;
  for (std::uint32_t s = 0; s < 30; ++s) d.observe(s, /*dst=*/99);
  d.observe(5, 99);  // Duplicate source.
  d.observe(1, 100);
  const auto report = d.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].destination, 99u);
  EXPECT_EQ(report[0].distinct_sources, 30u);
  EXPECT_EQ(d.alerts(25).size(), 1u);
  EXPECT_EQ(d.alerts(25)[0].destination, 99u);
  EXPECT_TRUE(d.alerts(100).empty());
}

TEST(FloodDetector, MirrorsScanSemantics) {
  // Flood is scan with src/dst swapped: per-destination counts add across
  // disjoint source sets exactly like scan counts add across paths.
  FloodDetector left, right, full;
  for (std::uint32_t s = 0; s < 10; ++s) {
    left.observe(s, 7);
    full.observe(s, 7);
  }
  for (std::uint32_t s = 10; s < 25; ++s) {
    right.observe(s, 7);
    full.observe(s, 7);
  }
  EXPECT_EQ(left.report()[0].distinct_sources + right.report()[0].distinct_sources,
            full.report()[0].distinct_sources);
}

}  // namespace
}  // namespace nwlb::nids
