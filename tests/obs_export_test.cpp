// Exposition renderers and the CI grammar validators: everything the
// renderers emit must pass the validators, and the validators must reject
// malformed documents (otherwise the CI check is vacuous).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace nwlb::obs {
namespace {

Registry& populated(Registry& reg) {
  reg.counter("nwlb_events_total", {}, "Things that happened").inc(3);
  reg.counter("nwlb_events_total", {{"kind", "odd"}}, "Things that happened").inc();
  reg.gauge("nwlb_level", {}, "Current level").set(-2.5);
  reg.histogram("nwlb_latency_seconds", {0.1, 1.0}, {}, "Latency").observe(0.05);
  reg.histogram("nwlb_latency_seconds", {0.1, 1.0}, {}, "Latency").observe(5.0);
  reg.trace().push("test", "event", 1.0, "detail with \"quotes\"\nand newline");
  return reg;
}

TEST(ObsExport, PrometheusTextPassesOwnValidator) {
  Registry reg;
  const std::string text = prometheus_text(populated(reg).snapshot());
  EXPECT_TRUE(validate_prometheus_text(text).empty())
      << text << "\nfirst error: " << validate_prometheus_text(text).front();
  // Histogram expansion: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("nwlb_latency_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("nwlb_latency_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nwlb_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("nwlb_events_total{kind=\"odd\"} 1"), std::string::npos);
}

TEST(ObsExport, PrometheusLabelValuesAreEscaped) {
  Registry reg;
  reg.counter("nwlb_esc_total", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find(R"(path="a\\b\"c\nd")"), std::string::npos);
  EXPECT_TRUE(validate_prometheus_text(text).empty());
}

TEST(ObsExport, PrometheusValidatorRejectsMalformedLines) {
  EXPECT_FALSE(validate_prometheus_text("1bad_name 3\n").empty());
  EXPECT_FALSE(validate_prometheus_text("metric_no_value\n").empty());
  EXPECT_FALSE(validate_prometheus_text("m{unclosed=\"v\" 3\n").empty());
  EXPECT_FALSE(validate_prometheus_text("m not-a-number\n").empty());
  EXPECT_FALSE(validate_prometheus_text("# TYPE m flotilla\n").empty());
  EXPECT_TRUE(validate_prometheus_text("# a comment\n\nm 3\nm2{a=\"b\"} 1 1234\n").empty());
}

TEST(ObsExport, JsonExpositionIsValidJson) {
  Registry reg;
  const std::string json = to_json(populated(reg));
  const std::vector<std::string> errors = validate_json(json);
  EXPECT_TRUE(errors.empty()) << json << "\nfirst error: " << errors.front();
  // The control characters in the trace detail must arrive escaped.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":["), std::string::npos);
}

TEST(ObsExport, JsonValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(validate_json("{").empty());
  EXPECT_FALSE(validate_json("{\"a\":01}").empty());
  EXPECT_FALSE(validate_json("{\"a\":1,}").empty());
  EXPECT_FALSE(validate_json("{\"a\":\"\x01\"}").empty());  // Raw control char.
  EXPECT_FALSE(validate_json("[1] trailing").empty());
  EXPECT_TRUE(validate_json("{\"a\":[1,2.5e-3,\"\\u00e9\",true,null]}").empty());
}

TEST(ObsExport, EqualValuesRenderByteIdentically) {
  Registry a, b;
  populated(a);
  populated(b);
  EXPECT_EQ(prometheus_text(a.snapshot()), prometheus_text(b.snapshot()));
  EXPECT_EQ(to_json(a), to_json(b));
}

}  // namespace
}  // namespace nwlb::obs
