// The replicated control loop end to end: N replicas drive the same data
// plane one leader at a time.  The ISSUE's acceptance properties live
// here — no generation regression and no double-install across crash and
// partition schedules (including a leader crash in each third of the
// install window), and with no faults the cluster converges to exactly
// the single-controller behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/controller.h"
#include "dist/replicated_loop.h"
#include "obs/metrics.h"
#include "online/loop.h"
#include "sim/failure.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::dist {
namespace {

struct DistFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Controller bootstrap;
  core::EpochResult initial;
  core::ProblemInput input;

  static core::ControllerOptions controller_options() {
    core::ControllerOptions copts;
    copts.architecture = core::Architecture::kPathReplicate;
    return copts;
  }
  static sim::TraceGenerator make_generator(const core::ProblemInput& input) {
    sim::TraceConfig tc;
    tc.scanners = 0;
    return sim::TraceGenerator(input.classes, tc, /*seed=*/77);
  }

  DistFixture()
      : tm(traffic::gravity_matrix(topology.graph,
                                   traffic::paper_total_sessions(11))),
        bootstrap(topology, tm, controller_options()),
        initial(bootstrap.run({.tm = &tm})),
        input(bootstrap.scenario().problem(core::Architecture::kPathReplicate)) {}

  sim::ReplaySimulator make_simulator(const sim::FailureSchedule* faults) {
    sim::ReplayOptions ropts;
    ropts.failures = faults;
    return sim::ReplaySimulator(input, initial.bundle, ropts);
  }

  ReplicatedLoopOptions loop_options(const sim::FailureSchedule* faults,
                                     int replicas = 3) {
    ReplicatedLoopOptions dopts;
    dopts.replicas = replicas;
    dopts.replica.estimator.scale_to_total = tm.total();
    dopts.faults = faults;
    return dopts;
  }
};

TEST(ReplicatedLoop, NoFaultsConvergesToSingleControllerBehavior) {
  DistFixture f;
  sim::ReplaySimulator rsim = f.make_simulator(nullptr);
  ReplicatedControlLoop rloop(f.topology, f.tm, DistFixture::controller_options(),
                              rsim, f.initial.bundle, f.loop_options(nullptr));

  // The oracle: the plain single-controller loop on an identical data
  // plane, fed byte-identical windows (same generator seed).
  sim::ReplaySimulator ssim(f.input, f.initial.bundle);
  online::ControlLoopOptions lopts;
  lopts.estimator_options.scale_to_total = f.tm.total();
  online::ControlLoop sloop(f.bootstrap, ssim, f.initial.bundle, lopts);

  sim::TraceGenerator rgen = DistFixture::make_generator(f.input);
  sim::TraceGenerator sgen = DistFixture::make_generator(f.input);
  ReplicatedIntervalReport rrep;
  online::IntervalReport srep;
  std::uint64_t prev_generation = 0;
  for (int w = 0; w < 4; ++w) {
    rrep = rloop.run_interval(rgen.generate(1200), rgen);
    srep = sloop.run_interval(sgen.generate(1200), sgen);
    // Healthy cluster: replica 0 wins term 1 and never loses it, every
    // interval's digest covers all origins, generations never regress.
    EXPECT_EQ(rrep.leader, 0);
    EXPECT_EQ(rrep.term, 1u);
    EXPECT_EQ(rrep.replicas_heard, 3);
    EXPECT_EQ(rrep.replicas_alive, 3);
    EXPECT_GE(rrep.generation, prev_generation);
    prev_generation = rrep.generation;
  }
  EXPECT_EQ(rrep.elections_total, 1u);
  // The gossiped digest is *exact*, so the leader's estimate — and the
  // resulting plan — matches the centralized loop, not approximately.
  EXPECT_NEAR(rrep.estimate_total, srep.estimate_total,
              1e-9 * srep.estimate_total);
  ASSERT_TRUE(rrep.epoch_run);
  EXPECT_FALSE(rrep.epoch.degraded);
  EXPECT_FALSE(srep.epoch.degraded);
  EXPECT_NEAR(rrep.epoch.assignment.load_cost, srep.epoch.assignment.load_cost,
              1e-6 * srep.epoch.assignment.load_cost);
}

TEST(Failover, LeaderCrashResumesGenerationsWithoutRegression) {
  DistFixture f;
  sim::FailureSchedule faults;
  sim::FailureEvent crash;
  crash.kind = sim::FailureKind::kControllerCrash;
  crash.target = 0;
  crash.begin = 2000;  // Window boundary: replica 0 dies cleanly at tick 2.
  crash.end = sim::FailureEvent::kNever;
  faults.add(crash);

  sim::ReplaySimulator sim = f.make_simulator(&faults);
  ReplicatedControlLoop loop(f.topology, f.tm, DistFixture::controller_options(),
                             sim, f.initial.bundle, f.loop_options(&faults));
  sim::TraceGenerator gen = DistFixture::make_generator(f.input);

  std::vector<ReplicatedIntervalReport> reports;
  std::uint64_t prev_generation = 0;
  for (int w = 0; w < 8; ++w) {
    reports.push_back(loop.run_interval(gen.generate(1000), gen));
    ASSERT_GE(reports.back().generation, prev_generation)
        << "generation regressed at interval " << w;
    prev_generation = reports.back().generation;
  }
  // Ticks 0-1: replica 0 leads and installs.
  EXPECT_EQ(reports[1].leader, 0);
  EXPECT_GT(reports[1].generation, f.initial.bundle.generation);
  // Ticks 2-3 sit inside the dead leader's promise horizon: leaderless,
  // nothing installed, the data plane keeps the last good configuration.
  EXPECT_EQ(reports[2].leader, -1);
  EXPECT_EQ(reports[3].leader, -1);
  EXPECT_EQ(reports[3].generation, reports[1].generation);
  EXPECT_EQ(reports[2].replicas_alive, 2);
  // Tick 4: the promise expired, a survivor wins a higher term and the
  // generation sequence resumes from the gate's frontier.
  EXPECT_GT(reports[4].leader, 0);
  EXPECT_EQ(reports[4].term, 2u);
  EXPECT_GT(reports[7].generation, reports[1].generation);
  EXPECT_EQ(reports[7].leader, reports[4].leader) << "new reign is stable";
  EXPECT_EQ(reports[7].elections_total, 2u);
}

TEST(Failover, LeaderCrashInEachWindowThirdNeverDoubleInstalls) {
  // Offsets landing in each third of interval 1's window [1000, 2000):
  // died before the epoch, after the epoch but before the install, and
  // after the install but before advertising the generation.
  const struct {
    std::uint64_t begin;
    int phase;
  } cases[] = {{1166, 0}, {1500, 1}, {1833, 2}};
  for (const auto& c : cases) {
    SCOPED_TRACE(testing::Message() << "crash begin " << c.begin);
    DistFixture f;
    sim::FailureSchedule faults;
    sim::FailureEvent crash;
    crash.kind = sim::FailureKind::kControllerCrash;
    crash.target = 0;
    crash.begin = c.begin;
    crash.end = 4000;  // Revives at tick 4.
    faults.add(crash);

    sim::ReplaySimulator sim = f.make_simulator(&faults);
    ReplicatedControlLoop loop(f.topology, f.tm,
                               DistFixture::controller_options(), sim,
                               f.initial.bundle, f.loop_options(&faults));
    sim::TraceGenerator gen = DistFixture::make_generator(f.input);

    std::vector<ReplicatedIntervalReport> reports;
    std::uint64_t prev_generation = 0;
    for (int w = 0; w < 8; ++w) {
      reports.push_back(loop.run_interval(gen.generate(1000), gen));
      // The install gate asserts no regression / no duplicate / no
      // split-brain on every admit; this is the cross-interval view.
      ASSERT_GE(reports.back().generation, prev_generation);
      prev_generation = reports.back().generation;
    }
    const ReplicatedIntervalReport& dying = reports[1];
    EXPECT_EQ(dying.leader, 0) << "lease was committed before the crash";
    EXPECT_EQ(dying.epoch_run, c.phase >= 1);
    EXPECT_EQ(dying.install_attempted, c.phase >= 2);
    if (c.phase < 2)
      EXPECT_EQ(dying.generation, reports[0].generation)
          << "a half-finished interval must not move the frontier";
    else
      EXPECT_GT(dying.generation, reports[0].generation);
    // Whatever the phase, somebody holds a term-2 lease once the promise
    // expires — possibly the revived replica 0 itself, whose candidacy
    // round comes first — and numbers its bundles from the gate's
    // frontier, not its stale local counter.  The run reaching interval 7
    // with monotone generations is the no-double-install proof.
    EXPECT_GE(reports[4].leader, 0);
    EXPECT_EQ(reports[4].term, 2u);
    EXPECT_GT(reports[7].generation, dying.generation);
  }
}

TEST(Failover, MinorityPartitionStrandingLeaderFailsOverThenHeals) {
  DistFixture f;
  sim::FailureSchedule faults;
  sim::FailureEvent cut;
  cut.kind = sim::FailureKind::kPartition;
  cut.target = 0b001;  // Replica 0 alone on one side of the cut.
  cut.begin = 2000;
  cut.end = 5000;
  faults.add(cut);

  sim::ReplaySimulator sim = f.make_simulator(&faults);
  ReplicatedControlLoop loop(f.topology, f.tm, DistFixture::controller_options(),
                             sim, f.initial.bundle, f.loop_options(&faults));
  sim::TraceGenerator gen = DistFixture::make_generator(f.input);

  std::vector<ReplicatedIntervalReport> reports;
  std::uint64_t prev_generation = 0;
  for (int w = 0; w < 8; ++w) {
    reports.push_back(loop.run_interval(gen.generate(1000), gen));
    ASSERT_GE(reports.back().generation, prev_generation);
    prev_generation = reports.back().generation;
    // Exclusivity under partition is the whole point: the loop's internal
    // scan NWLB_CHECKs at most one committed lease per tick, and the gate
    // would abort on any same-term second installer.  Reaching here with
    // a report at all means both held.
  }
  // While the stranded leader's pre-partition lease still covers the
  // tick it may keep installing — legitimately; nobody else can commit.
  EXPECT_EQ(reports[2].partition, 0b001u);
  EXPECT_EQ(reports[2].replicas_alive, 3);
  // Once that lease lapses the majority side elects a new leader in a
  // higher term; the deposed replica can never renew across the cut.
  bool majority_leader_seen = false;
  for (int w = 3; w < 5; ++w)
    if (reports[static_cast<std::size_t>(w)].leader > 0)
      majority_leader_seen = true;
  EXPECT_TRUE(majority_leader_seen);
  // Healed: full digest coverage again, installs keep flowing.
  const ReplicatedIntervalReport& last = reports[7];
  EXPECT_EQ(last.partition, 0u);
  EXPECT_EQ(last.replicas_heard, 3);
  EXPECT_GT(last.generation, reports[2].generation);
}

TEST(ReplicatedLoop, ConservesEverySessionAcrossFailover) {
  DistFixture f;
  sim::FailureSchedule faults;
  sim::FailureEvent crash;
  crash.kind = sim::FailureKind::kControllerCrash;
  crash.target = 0;
  crash.begin = 2000;
  crash.end = 5000;
  faults.add(crash);

  sim::ReplaySimulator sim = f.make_simulator(&faults);
  ReplicatedControlLoop loop(f.topology, f.tm, DistFixture::controller_options(),
                             sim, f.initial.bundle, f.loop_options(&faults));
  sim::TraceGenerator gen = DistFixture::make_generator(f.input);
  std::uint64_t replayed = 0;
  for (int w = 0; w < 8; ++w)
    replayed += loop.run_interval(gen.generate(1000), gen).sessions_replayed;

  // Control-plane chaos must never cost the data plane a session: every
  // one replayed rode exactly one generation, before, during, and after
  // the failover.
  const sim::RolloutStats rollout = sim.rollout_stats();
  EXPECT_EQ(replayed, 8000u);
  EXPECT_EQ(sim.stats().sessions_replayed, replayed);
  EXPECT_EQ(rollout.sessions_current_generation +
                rollout.sessions_draining_generation,
            replayed);
  EXPECT_EQ(rollout.sessions_unassigned, 0u);
}

TEST(ReplicatedLoop, SingleReplicaDegeneratesToOneController) {
  DistFixture f;
  sim::ReplaySimulator sim = f.make_simulator(nullptr);
  ReplicatedControlLoop loop(f.topology, f.tm, DistFixture::controller_options(),
                             sim, f.initial.bundle,
                             f.loop_options(nullptr, /*replicas=*/1));
  sim::TraceGenerator gen = DistFixture::make_generator(f.input);
  const ReplicatedIntervalReport report =
      loop.run_interval(gen.generate(800), gen);
  EXPECT_EQ(report.leader, 0);
  EXPECT_EQ(report.replicas_heard, 1);
  EXPECT_TRUE(report.epoch_run);
  EXPECT_GT(report.generation, f.initial.bundle.generation);
}

TEST(ReplicatedLoop, ExportsDistMetrics) {
  DistFixture f;
  obs::Registry registry;
  sim::ReplaySimulator sim = f.make_simulator(nullptr);
  ReplicatedLoopOptions dopts = f.loop_options(nullptr);
  dopts.metrics = &registry;
  ReplicatedControlLoop loop(f.topology, f.tm, DistFixture::controller_options(),
                             sim, f.initial.bundle, dopts);
  sim::TraceGenerator gen = DistFixture::make_generator(f.input);
  for (int w = 0; w < 3; ++w) loop.run_interval(gen.generate(800), gen);

  EXPECT_EQ(registry.counter("nwlb_dist_intervals_total").value(), 3u);
  EXPECT_EQ(registry.counter("nwlb_dist_leaderless_intervals_total").value(), 0u);
  EXPECT_GE(registry.counter("nwlb_dist_installs_total").value(), 1u);
  EXPECT_EQ(registry.counter("nwlb_dist_elections_total").value(), 1u);
  EXPECT_EQ(registry.gauge("nwlb_dist_leader").value(), 0.0);
  EXPECT_EQ(registry.gauge("nwlb_dist_replicas_alive").value(), 3.0);
  EXPECT_GE(registry.gauge("nwlb_dist_generation").value(), 2.0);
}

}  // namespace
}  // namespace nwlb::dist
