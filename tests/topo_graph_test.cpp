#include "topo/graph.h"

#include <gtest/gtest.h>

namespace nwlb::topo {
namespace {

Graph triangle() {
  Graph g;
  g.add_node("a", 10);
  g.add_node("b", 20);
  g.add_node("c", 30);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

TEST(Graph, BasicAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_directed_links(), 6);
  EXPECT_EQ(g.name(1), "b");
  EXPECT_DOUBLE_EQ(g.population(2), 30.0);
  EXPECT_DOUBLE_EQ(g.total_population(), 60.0);
}

TEST(Graph, RejectsBadEdges) {
  Graph g = triangle();
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);  // Duplicate.
  EXPECT_THROW(g.add_edge(0, 9), std::out_of_range);
  EXPECT_THROW(g.add_node("x", 0.0), std::invalid_argument);
}

TEST(Graph, NeighborsSorted) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 3);
  EXPECT_EQ(nb[2], 4);
}

TEST(Graph, LinkIdsDistinguishDirections) {
  const Graph g = triangle();
  const LinkId ab = g.link_id(0, 1);
  const LinkId ba = g.link_id(1, 0);
  EXPECT_NE(ab, ba);
  EXPECT_EQ(g.link_endpoints(ab), (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(g.link_endpoints(ba), (std::pair<NodeId, NodeId>{1, 0}));
  EXPECT_THROW(g.link_id(0, 0), std::invalid_argument);
}

TEST(Graph, Connectivity) {
  Graph g = triangle();
  EXPECT_TRUE(g.connected());
  g.add_node("island");
  EXPECT_FALSE(g.connected());
}

TEST(Graph, NeighborhoodByHops) {
  // Path graph 0-1-2-3-4.
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node("n" + std::to_string(i));
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  EXPECT_EQ(g.neighborhood(0, 1), (std::vector<NodeId>{1}));
  EXPECT_EQ(g.neighborhood(0, 2), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(g.neighborhood(2, 2), (std::vector<NodeId>{0, 1, 3, 4}));
  EXPECT_TRUE(g.neighborhood(0, 0).empty());
}

TEST(Graph, SetPopulation) {
  Graph g = triangle();
  g.set_population(0, 99.0);
  EXPECT_DOUBLE_EQ(g.population(0), 99.0);
  EXPECT_THROW(g.set_population(0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::topo
