// Hash, range-table, shim-decision, and aggregation-transport tests.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "shim/aggregation.h"
#include "shim/config.h"
#include "shim/hash.h"
#include "shim/shim.h"
#include "util/check.h"
#include "util/rng.h"

namespace nwlb::shim {
namespace {

TEST(Lookup3, PublishedReferenceVectors) {
  // The vectors from Bob Jenkins' lookup3.c self-test driver.
  const char* q = "Four score and seven years ago";
  EXPECT_EQ(lookup3(q, 30, 0), 0x17770551u);
  EXPECT_EQ(lookup3(q, 30, 1), 0xcd628161u);
  EXPECT_EQ(lookup3(nullptr, 0, 0), 0xdeadbeefu);
}

TEST(Lookup3, KnownProperties) {
  // Deterministic, seed-sensitive, length-sensitive.
  const std::string data = "four score and seven years ago";
  EXPECT_EQ(lookup3(data.data(), data.size(), 0), lookup3(data.data(), data.size(), 0));
  EXPECT_NE(lookup3(data.data(), data.size(), 0), lookup3(data.data(), data.size(), 1));
  EXPECT_NE(lookup3(data.data(), 10, 0), lookup3(data.data(), 11, 0));
  EXPECT_EQ(lookup3(nullptr, 0, 7), lookup3(nullptr, 0, 7));
}

TEST(Lookup3, AllTailLengthsDiffer) {
  // Exercise every tail-length branch (1..13+ bytes).
  const std::string data = "abcdefghijklmnopqrstuvwxyz";
  std::set<std::uint32_t> hashes;
  for (std::size_t len = 1; len <= 16; ++len)
    hashes.insert(lookup3(data.data(), len, 0));
  EXPECT_EQ(hashes.size(), 16u);
}

TEST(Lookup3, UniformityOverRanges) {
  // Map hashes of sequential tuples into 8 buckets; expect rough balance.
  std::vector<int> buckets(8, 0);
  for (std::uint32_t i = 0; i < 8000; ++i) {
    nids::FiveTuple t{0x0a000000 + i, 0x0b000000 + (i * 7), static_cast<std::uint16_t>(i),
                      80, 6};
    ++buckets[hash_tuple(t) / (1u << 29)];
  }
  for (int b : buckets) EXPECT_NEAR(b, 1000, 200);
}

TEST(HashTuple, BidirectionallyConsistent) {
  nwlb::util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    nids::FiveTuple t{static_cast<std::uint32_t>(rng()), static_cast<std::uint32_t>(rng()),
                      static_cast<std::uint16_t>(rng()), static_cast<std::uint16_t>(rng()),
                      6};
    EXPECT_EQ(hash_tuple(t), hash_tuple(t.reversed()));
  }
}

TEST(RangeTable, LookupAndFractions) {
  RangeTable t;
  t.add(HashRange{0, kHashSpace / 2, Action::process()});
  t.add(HashRange{kHashSpace / 2, (3 * kHashSpace) / 4, Action::replicate(5)});
  EXPECT_EQ(t.lookup(0).kind, Action::Kind::kProcess);
  EXPECT_EQ(t.lookup(static_cast<std::uint32_t>(kHashSpace / 2)).kind,
            Action::Kind::kReplicate);
  EXPECT_EQ(t.lookup(static_cast<std::uint32_t>(kHashSpace / 2)).mirror, 5);
  EXPECT_EQ(t.lookup(0xffffffffu).kind, Action::Kind::kIgnore);  // Gap.
  EXPECT_DOUBLE_EQ(t.fraction_of(Action::Kind::kProcess), 0.5);
  EXPECT_DOUBLE_EQ(t.fraction_of(Action::Kind::kReplicate), 0.25);
  EXPECT_DOUBLE_EQ(t.fraction_replicated_to(5), 0.25);
  EXPECT_DOUBLE_EQ(t.fraction_replicated_to(6), 0.0);
}

TEST(RangeTable, RejectsOverlapsAndMalformed) {
  RangeTable t;
  t.add(HashRange{10, 20, Action::process()});
  EXPECT_THROW(t.add(HashRange{15, 30, Action::process()}), std::invalid_argument);
  EXPECT_THROW(t.add(HashRange{40, 40, Action::process()}), std::invalid_argument);
  EXPECT_THROW(t.add(HashRange{50, kHashSpace + 1, Action::process()}),
               std::invalid_argument);
}

TEST(ShimConfig, PerDirectionTables) {
  ShimConfig config;
  RangeTable fwd;
  fwd.add(HashRange{0, kHashSpace, Action::process()});
  config.set_table(3, nids::Direction::kForward, fwd);
  EXPECT_EQ(config.lookup(3, nids::Direction::kForward, 123).kind,
            Action::Kind::kProcess);
  EXPECT_EQ(config.lookup(3, nids::Direction::kReverse, 123).kind,
            Action::Kind::kIgnore);
  EXPECT_EQ(config.lookup(4, nids::Direction::kForward, 123).kind,
            Action::Kind::kIgnore);
}

TEST(Shim, DecisionsAreBidirectionallyPinned) {
  ShimConfig config;
  RangeTable table;
  table.add(HashRange{0, kHashSpace / 2, Action::process()});
  table.add(HashRange{kHashSpace / 2, kHashSpace, Action::replicate(9)});
  config.set_table(0, table);  // Both directions.
  Shim shim(1);
  shim.install(config);  // nwlb-lint: allow(raw-shim-install)
  nwlb::util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    nids::FiveTuple t{static_cast<std::uint32_t>(rng()), static_cast<std::uint32_t>(rng()),
                      static_cast<std::uint16_t>(rng()), static_cast<std::uint16_t>(rng()),
                      6};
    const Decision fwd = shim.decide(0, t, nids::Direction::kForward);
    const Decision rev = shim.decide(0, t.reversed(), nids::Direction::kReverse);
    EXPECT_EQ(fwd.action, rev.action);
    EXPECT_EQ(fwd.hash, rev.hash);
  }
  EXPECT_EQ(shim.packets_seen(), 1000u);
}

TEST(Shim, InstallSkipsRecompileForIdenticalConfig) {
  // Regression: the rollout engine re-pushes configs every control
  // interval; an unchanged config must only adopt the generation tag, not
  // rebuild the flat tables.
  ShimConfig config;
  RangeTable table;
  table.add(HashRange{0, kHashSpace / 2, Action::process()});
  table.add(HashRange{kHashSpace / 2, kHashSpace, Action::replicate(9)});
  config.set_table(0, table);
  Shim shim(1);
  shim.install(config, 1);  // nwlb-lint: allow(raw-shim-install)
  EXPECT_EQ(shim.compiles(), 1);
  EXPECT_EQ(shim.generation(), 1u);

  shim.install(config, 2);  // nwlb-lint: allow(raw-shim-install)
  EXPECT_EQ(shim.compiles(), 1) << "identical config must not recompile";
  EXPECT_EQ(shim.generation(), 2u) << "but the generation tag advances";
  // The skip must not break decisions.
  EXPECT_EQ(shim.config().lookup(0, nids::Direction::kForward, 1).kind,
            Action::Kind::kProcess);

  // A structurally different config does recompile.
  RangeTable moved;
  moved.add(HashRange{0, kHashSpace / 4, Action::process()});
  moved.add(HashRange{kHashSpace / 4, kHashSpace, Action::replicate(9)});
  config.set_table(0, moved);
  shim.install(config, 3);  // nwlb-lint: allow(raw-shim-install)
  EXPECT_EQ(shim.compiles(), 2);
  EXPECT_EQ(shim.generation(), 3u);
}

TEST(Shim, ReplicationAccounting) {
  Shim shim(0);
  shim.count_replicated(3, 100);
  shim.count_replicated(3, 50);
  shim.count_replicated(7, 10);
  EXPECT_EQ(shim.total_replicated_bytes(), 160u);
  EXPECT_EQ(shim.replicated_bytes_to(3), 150u);
  EXPECT_EQ(shim.replicated_bytes_to(7), 10u);
  EXPECT_EQ(shim.replicated_bytes_to(99), 0u);  // Never-used mirror.
}

TEST(ShimStatsContract, NegativeMirrorIdIsRejectedNotResized) {
  // Regression: a negative mirror id cast to size_t becomes a ~2^64 index;
  // before the contract guard, count_replicated would try to resize the
  // byte vector to that length (unbounded allocation) instead of failing.
  ShimStats stats;
  EXPECT_THROW(stats.count_replicated(-1, 100), nwlb::util::CheckError);
  EXPECT_THROW(stats.count_replicated(std::numeric_limits<int>::min(), 1),
               nwlb::util::CheckError);
  EXPECT_TRUE(stats.replicated_bytes.empty());  // Nothing grew.
  EXPECT_EQ(stats.replicated_bytes_to(-1), 0u);  // Reads stay total.
  stats.count_replicated(0, 5);  // Boundary id is valid.
  EXPECT_EQ(stats.replicated_bytes_to(0), 5u);
}

TEST(ShimStats, DecisionCountersMergeAcrossWorkers) {
  ShimStats a, b;
  a.packets_seen = 10;
  a.decided_process = 4;
  a.decided_replicate = 5;
  a.decided_ignore = 1;
  a.count_replicated(2, 100);
  b.packets_seen = 3;
  b.decided_ignore = 3;
  b.count_replicated(5, 7);
  a.merge(b);
  EXPECT_EQ(a.packets_seen, 13u);
  EXPECT_EQ(a.decided_process, 4u);
  EXPECT_EQ(a.decided_replicate, 5u);
  EXPECT_EQ(a.decided_ignore, 4u);
  EXPECT_EQ(a.replicated_bytes_to(2), 100u);
  EXPECT_EQ(a.replicated_bytes_to(5), 7u);
}

TEST(Shim, DecisionVerdictCountersTrackLookups) {
  ShimConfig config;
  RangeTable table;
  table.add(HashRange{0, kHashSpace / 2, Action::process()});
  table.add(HashRange{kHashSpace / 2, kHashSpace, Action::replicate(9)});
  config.set_table(0, table);
  Shim shim(1);
  shim.install(config);  // nwlb-lint: allow(raw-shim-install)
  nwlb::util::Rng rng(7);
  ShimStats stats;
  for (int i = 0; i < 200; ++i) {
    nids::FiveTuple t{static_cast<std::uint32_t>(rng()),
                      static_cast<std::uint32_t>(rng()),
                      static_cast<std::uint16_t>(rng()),
                      static_cast<std::uint16_t>(rng()), 6};
    shim.decide(0, t, nids::Direction::kForward, stats);
    shim.decide(1, t, nids::Direction::kForward, stats);  // No table: ignore.
  }
  EXPECT_EQ(stats.decided_process + stats.decided_replicate + stats.decided_ignore,
            stats.packets_seen);
  EXPECT_EQ(stats.decided_ignore, 200u);  // The un-tabled class.
  EXPECT_GT(stats.decided_process, 0u);
  EXPECT_GT(stats.decided_replicate, 0u);
}

TEST(SourceReport, EncodeDecodeRoundTrip) {
  SourceReport report;
  report.origin_node = 4;
  report.rows = {{10, 3}, {20, 7}};
  const auto wire = report.encode();
  EXPECT_EQ(wire.size(), report.wire_bytes());
  const SourceReport decoded = SourceReport::decode(wire);
  EXPECT_EQ(decoded.origin_node, 4);
  ASSERT_EQ(decoded.rows.size(), 2u);
  EXPECT_EQ(decoded.rows[1].source, 20u);
  EXPECT_EQ(decoded.rows[1].distinct_destinations, 7u);
}

TEST(FlowReport, EncodeDecodeRoundTrip) {
  FlowReport report;
  report.origin_node = 2;
  report.pairs = {{1, 2}, {1, 3}, {5, 6}};
  const FlowReport decoded = FlowReport::decode(report.encode());
  EXPECT_EQ(decoded.pairs, report.pairs);
  // Cross-decoding must fail on the magic.
  EXPECT_THROW(SourceReport::decode(report.encode()), std::invalid_argument);
}

TEST(Aggregator, SourceReportsAddUp) {
  Aggregator agg;
  SourceReport a;
  a.rows = {{1, 4}, {2, 1}};
  SourceReport b;
  b.rows = {{1, 3}};
  agg.add(a);
  agg.add(b);
  const auto totals = agg.totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].distinct_destinations, 7u);  // 4 + 3 across paths.
  EXPECT_EQ(agg.alerts(6).size(), 1u);
  EXPECT_EQ(agg.reports_received(), 2u);
  EXPECT_GT(agg.bytes_received(), 0u);
}

TEST(Aggregator, FlowReportsUnion) {
  // The Fig. 8 double-counting discussion: flow-level reports of the same
  // (src, dst) pair from different nodes must NOT double count.
  Aggregator agg;
  FlowReport a;
  a.pairs = {{1, 100}, {1, 101}};
  FlowReport b;
  b.pairs = {{1, 101}, {1, 102}};  // 101 repeated.
  agg.add(a);
  agg.add(b);
  const auto totals = agg.totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].distinct_destinations, 3u);
}

TEST(Aggregator, ThresholdOnlyAtAggregator) {
  // Each node individually is under threshold; the aggregate exceeds it.
  Aggregator agg;
  for (int node = 0; node < 4; ++node) {
    SourceReport r;
    r.origin_node = node;
    r.rows = {{42, 3}};  // 3 destinations seen at each of 4 nodes.
    agg.add(r);
  }
  EXPECT_TRUE(agg.alerts(10).size() == 1 && agg.alerts(10)[0].source == 42u);
  agg.clear();
  EXPECT_TRUE(agg.totals().empty());
}

}  // namespace
}  // namespace nwlb::shim
