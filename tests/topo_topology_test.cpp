#include "topo/topology.h"

#include <gtest/gtest.h>

#include "topo/routing.h"

namespace nwlb::topo {
namespace {

TEST(Topology, PaperPopCounts) {
  const auto all = all_topologies();
  ASSERT_EQ(all.size(), 8u);
  const std::pair<const char*, int> expected[] = {
      {"Internet2", 11}, {"Geant", 22},  {"Enterprise", 23}, {"TiNet", 41},
      {"Telstra", 44},   {"Sprint", 52}, {"Level3", 63},     {"NTT", 70},
  };
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i].first);
    EXPECT_EQ(all[i].graph.num_nodes(), expected[i].second) << all[i].name;
  }
}

TEST(Topology, AllConnected) {
  for (const auto& t : all_topologies())
    EXPECT_TRUE(t.graph.connected()) << t.name;
}

TEST(Topology, Internet2HasAbileneShape) {
  const auto t = make_internet2();
  EXPECT_EQ(t.graph.num_edges(), 14);
  // New York is the biggest metro in the gravity model.
  double best = 0.0;
  std::string biggest;
  for (int i = 0; i < t.graph.num_nodes(); ++i) {
    if (t.graph.population(i) > best) {
      best = t.graph.population(i);
      biggest = t.graph.name(i);
    }
  }
  EXPECT_EQ(biggest, "NewYork");
}

TEST(Topology, SyntheticIsDeterministic) {
  const auto a = make_ntt();
  const auto b = make_ntt();
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (int i = 0; i < a.graph.num_nodes(); ++i)
    EXPECT_DOUBLE_EQ(a.graph.population(i), b.graph.population(i));
  for (int i = 0; i < a.graph.num_nodes(); ++i) {
    const auto na = a.graph.neighbors(i);
    const auto nb = b.graph.neighbors(i);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t k = 0; k < na.size(); ++k) EXPECT_EQ(na[k], nb[k]);
  }
}

TEST(Topology, SyntheticSeedsDiffer) {
  const auto a = make_synthetic_isp("A", 30, 1);
  const auto b = make_synthetic_isp("B", 30, 2);
  bool differs = a.graph.num_edges() != b.graph.num_edges();
  if (!differs) {
    for (int i = 0; i < 30 && !differs; ++i) {
      const auto na = a.graph.neighbors(i);
      const auto nb = b.graph.neighbors(i);
      differs = na.size() != nb.size() ||
                !std::equal(na.begin(), na.end(), nb.begin());
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Topology, SyntheticDegreeTarget) {
  const auto t = make_synthetic_isp("X", 50, 7, 3.2);
  const double avg = 2.0 * t.graph.num_edges() / t.graph.num_nodes();
  EXPECT_GE(avg, 2.5);
  EXPECT_LE(avg, 3.5);
  EXPECT_THROW(make_synthetic_isp("bad", 2, 1), std::invalid_argument);
  EXPECT_THROW(make_synthetic_isp("bad", 10, 1, 1.0), std::invalid_argument);
}

TEST(Topology, ByNameLookup) {
  EXPECT_EQ(topology_by_name("Sprint").graph.num_nodes(), 52);
  EXPECT_THROW(topology_by_name("nope"), std::invalid_argument);
}

TEST(Topology, SmallSubsetIsPrefix) {
  const auto small = small_topologies();
  ASSERT_EQ(small.size(), 4u);
  EXPECT_EQ(small.back().name, "TiNet");
}

TEST(Topology, RoutableAtScale) {
  // Routing must construct without throwing on the largest topology.
  const auto t = make_ntt();
  const Routing r(t.graph);
  EXPECT_GE(r.distance(0, t.graph.num_nodes() - 1), 1);
}

}  // namespace
}  // namespace nwlb::topo
