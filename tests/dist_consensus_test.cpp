// The consensus substrate: bus delivery semantics and set-union estimate
// gossip.  The ISSUE's convergence property lives here — the gossiped
// digest must equal the centralized counters *exactly* (not approximately)
// within a bounded number of rounds, with or without message loss, and a
// replica's estimator fed that digest must match a single-controller
// estimator fed the full counters bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/controller.h"
#include "dist/bus.h"
#include "dist/replica.h"
#include "online/estimator.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::dist {
namespace {

TEST(ConsensusBus, DeliversNextRoundInSendOrder) {
  MessageBus bus(2);
  Message a;
  a.type = MsgType::kHeartbeat;
  a.from = 0;
  a.to = 1;
  a.term = 7;
  Message b = a;
  b.type = MsgType::kHeartbeatAck;
  bus.send(a);
  bus.send(b);
  // Synchronous rounds: nothing is deliverable in the round it was sent.
  EXPECT_TRUE(bus.drain(1).empty());
  bus.advance_round();
  const std::vector<Message> got = bus.drain(1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, MsgType::kHeartbeat);
  EXPECT_EQ(got[1].type, MsgType::kHeartbeatAck);
  EXPECT_EQ(got[0].term, 7u);
  EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST(ConsensusBus, PartitionCutsCrossGroupMessages) {
  MessageBus bus(3);
  bus.set_partition(0b001);  // Replica 0 alone in group A.
  Message cross;
  cross.from = 0;
  cross.to = 1;
  Message within;
  within.from = 1;
  within.to = 2;
  bus.send(cross);
  bus.send(within);
  bus.advance_round();
  EXPECT_TRUE(bus.drain(1).empty());
  EXPECT_EQ(bus.drain(2).size(), 1u);
  EXPECT_EQ(bus.stats().partitioned, 1u);
  EXPECT_EQ(bus.stats().delivered, 1u);
  EXPECT_FALSE(bus.reachable(0, 1));
  EXPECT_TRUE(bus.reachable(1, 2));
  bus.set_partition(0);  // Healed.
  EXPECT_TRUE(bus.reachable(0, 1));
}

TEST(ConsensusBus, DropsAreSeededAndReproducible) {
  BusOptions opts;
  opts.drop_probability = 0.5;
  auto run = [&] {
    MessageBus bus(2, opts);
    for (int i = 0; i < 200; ++i) {
      Message msg;
      msg.from = 0;
      msg.to = 1;
      bus.send(msg);
    }
    bus.advance_round();
    (void)bus.drain(1);
    return bus.stats();
  };
  const BusStats first = run();
  const BusStats again = run();
  EXPECT_EQ(first.sent, 200u);
  EXPECT_EQ(first.delivered + first.dropped, 200u);
  // Half-ish loss, and bit-identical across reruns (stateless hash draws).
  EXPECT_GT(first.dropped, 50u);
  EXPECT_LT(first.dropped, 150u);
  EXPECT_EQ(first.dropped, again.dropped);
  EXPECT_EQ(first.delivered, again.delivered);
}

TEST(ConsensusBus, FlushDropsEverythingInFlight) {
  MessageBus bus(2);
  Message msg;
  msg.from = 0;
  msg.to = 1;
  bus.send(msg);
  bus.flush();
  bus.advance_round();
  EXPECT_TRUE(bus.drain(1).empty());
  EXPECT_EQ(bus.stats().flushed, 1u);
  EXPECT_EQ(bus.stats().delivered, 0u);
}

// ---------------------------------------------------------------------------

/// N replicas over one bus, each seeded with a disjoint slice of a
/// fabricated window; the oracle is the elementwise slice sum.
struct GossipFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm = traffic::gravity_matrix(
      topology.graph, traffic::paper_total_sessions(11));
  core::ControllerOptions copts;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::size_t num_classes = 0;
  std::vector<std::uint64_t> oracle_sessions;
  std::vector<std::uint64_t> oracle_bytes;

  explicit GossipFixture(int n, ReplicaOptions ropts = {}) {
    copts.architecture = core::Architecture::kPathReplicate;
    for (int r = 0; r < n; ++r)
      replicas.push_back(
          std::make_unique<Replica>(r, n, topology, tm, copts, ropts));
    num_classes = replicas.front()->controller().scenario().classes().size();
    oracle_sessions.assign(num_classes, 0);
    oracle_bytes.assign(num_classes, 0);
    for (std::size_t c = 0; c < num_classes; ++c) {
      oracle_sessions[c] = 100 + static_cast<std::uint64_t>(c);
      oracle_bytes[c] = 1000 + 7 * static_cast<std::uint64_t>(c);
    }
  }

  /// Replica r's slice: the classes with index % N == r (any disjoint
  /// cover works — ownership semantics live in the loop, not the gossip).
  EstimatePartial slice(int r) const {
    EstimatePartial own;
    own.origin = r;
    own.sessions.assign(num_classes, 0);
    own.bytes.assign(num_classes, 0);
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (static_cast<int>(c % replicas.size()) != r) continue;
      own.sessions[c] = oracle_sessions[c];
      own.bytes[c] = oracle_bytes[c];
    }
    return own;
  }

  /// One full interval of synchronous rounds; returns origins heard per
  /// replica (from end_interval).
  std::vector<int> run_interval(MessageBus& bus, std::uint64_t tick, int rounds) {
    for (auto& rep : replicas) rep->begin_interval(tick, slice(rep->id()));
    for (int round = 0; round < rounds; ++round) {
      for (auto& rep : replicas) rep->run_round(bus, tick, round, rounds);
      bus.advance_round();
    }
    std::vector<int> heard;
    for (auto& rep : replicas) heard.push_back(rep->end_interval(tick));
    return heard;
  }
};

TEST(Consensus, GossipConvergesExactlyOnLosslessBus) {
  const int n = 5;
  GossipFixture f(n);
  MessageBus bus(n);
  // The loop's internal floor: replicas + 4 rounds must suffice on a
  // healthy bus — that is the bounded-round convergence contract.
  const std::vector<int> heard = f.run_interval(bus, /*tick=*/0, n + 4);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(heard[static_cast<std::size_t>(r)], n) << "replica " << r;
    EXPECT_EQ(f.replicas[static_cast<std::size_t>(r)]->digest_sessions(),
              f.oracle_sessions)
        << "replica " << r << " digest != centralized sums";
    EXPECT_EQ(f.replicas[static_cast<std::size_t>(r)]->digest_bytes(),
              f.oracle_bytes);
  }
}

TEST(Consensus, ConvergesUnderDropsAndDelaysWithinBoundedRounds) {
  const int n = 5;
  GossipFixture f(n);
  BusOptions bopts;
  bopts.drop_probability = 0.3;
  bopts.max_delay_rounds = 2;
  MessageBus bus(n, bopts);
  // A lossy, laggy bus gets three times the healthy budget — still a fixed
  // bound, and the digest must still be *exact*: set-union merge means
  // loss costs time, never mass.
  const std::vector<int> heard = f.run_interval(bus, /*tick=*/0, 3 * (n + 4));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(heard[static_cast<std::size_t>(r)], n) << "replica " << r;
    EXPECT_EQ(f.replicas[static_cast<std::size_t>(r)]->digest_sessions(),
              f.oracle_sessions);
  }
  EXPECT_GT(bus.stats().dropped, 0u) << "the bus was supposed to be lossy";
}

TEST(Consensus, DigestFedEstimatorMatchesCentralizedOracle) {
  // The gossip merge is estimator-agnostic: for *every* registered kind,
  // a replica's estimator fed the converged digest must match a single
  // centralized estimator fed the full counters bit for bit.
  for (std::string_view kind : online::estimator_kinds()) {
    const int n = 3;
    ReplicaOptions ropts;
    ropts.estimator_spec = std::string(kind);
    ropts.estimator.scale_to_total = 50'000.0;
    GossipFixture f(n, ropts);
    MessageBus bus(n);

    // Centralized oracle: one estimator fed the full window directly.
    const std::unique_ptr<online::Estimator> central = online::make_estimator(
        kind, f.replicas.front()->controller().scenario().classes(),
        f.topology.graph.num_nodes(), ropts.estimator);

    for (std::uint64_t tick = 0; tick < 3; ++tick) {
      f.run_interval(bus, tick, n + 4);
      central->observe(f.oracle_sessions, f.oracle_bytes);
      bus.flush();
    }
    const traffic::TrafficMatrix want = central->estimate();
    for (int r = 0; r < n; ++r) {
      const Replica& replica = *f.replicas[static_cast<std::size_t>(r)];
      EXPECT_EQ(replica.estimator().kind(), kind);
      const traffic::TrafficMatrix got = replica.estimator().estimate();
      EXPECT_NEAR(got.total(), want.total(), 1e-9 * want.total());
      EXPECT_LT(online::estimation_error(got, want), 1e-12)
          << kind << " replica " << r
          << " diverged from the centralized estimate";
    }
  }
}

TEST(Consensus, DuplicateAndStalePartialsAreIdempotent) {
  const int n = 3;
  GossipFixture f(n);
  MessageBus bus(n);
  Replica& target = *f.replicas[0];
  target.begin_interval(/*tick=*/5, f.slice(0));

  Message share;
  share.type = MsgType::kEstimateShare;
  share.from = 1;
  share.to = 0;
  share.tick = 5;
  share.partials.push_back(f.slice(1));
  bus.send(share);
  bus.send(share);  // Duplicate delivery of the same origin's slice.
  Message stale = share;
  stale.tick = 4;  // Cross-interval leftover: must be ignored outright.
  stale.partials.clear();
  stale.partials.push_back(f.slice(2));
  bus.send(stale);
  bus.advance_round();
  target.run_round(bus, /*tick=*/5, /*round=*/0, /*total_rounds=*/8);

  EXPECT_EQ(target.replicas_heard(), 2);  // Self + origin 1, counted once.
  const int heard = target.end_interval(5);
  EXPECT_EQ(heard, 2);
  // The digest holds exactly one copy of each heard origin's slice.
  std::vector<std::uint64_t> want(f.num_classes, 0);
  for (std::size_t c = 0; c < f.num_classes; ++c)
    if (c % 3 == 0 || c % 3 == 1) want[c] = f.oracle_sessions[c];
  EXPECT_EQ(target.digest_sessions(), want);
}

}  // namespace
}  // namespace nwlb::dist
