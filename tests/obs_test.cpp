// obs::Registry / Counter / Gauge / Histogram / TraceRing behavior, plus
// the concurrency test CI runs under ThreadSanitizer: pool workers hammer
// shared metrics while the main thread takes snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nwlb::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(ObsHistogram, BucketsAreInclusiveUpperBoundsPlusInf) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (inclusive)
  h.observe(5.0);   // <= 10.0
  h.observe(100.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  const std::vector<std::uint64_t> want = {2, 1, 1};
  EXPECT_EQ(h.bucket_counts(), want);
}

TEST(ObsRegistry, SameNameAndLabelsReturnsSameObject) {
  Registry reg;
  Counter& a = reg.counter("nwlb_test_total", {{"k", "v"}});
  Counter& b = reg.counter("nwlb_test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Different label value -> distinct series.
  Counter& c = reg.counter("nwlb_test_total", {{"k", "w"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistry, SnapshotIsDeterministicallyOrdered) {
  Registry reg;
  reg.counter("nwlb_b_total").inc(2);
  reg.gauge("nwlb_a_level").set(1.0);
  reg.counter("nwlb_b_total", {{"x", "2"}}).inc();
  reg.counter("nwlb_b_total", {{"x", "1"}}).inc();
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.samples[0].name, "nwlb_a_level");
  EXPECT_EQ(snap.samples[1].name, "nwlb_b_total");
  EXPECT_TRUE(snap.samples[1].labels.empty());
  ASSERT_EQ(snap.samples[2].labels.size(), 1u);
  EXPECT_EQ(snap.samples[2].labels[0].second, "1");
  EXPECT_EQ(snap.samples[3].labels[0].second, "2");
}

TEST(ObsRegistry, RejectsBadNamesLabelsAndBounds) {
  Registry reg;
  EXPECT_THROW(reg.counter("1bad"), util::CheckError);
  EXPECT_THROW(reg.counter("nwlb_ok_total", {{"0bad", "v"}}), util::CheckError);
  EXPECT_THROW(reg.histogram("nwlb_h", {}), util::CheckError);
  EXPECT_THROW(reg.histogram("nwlb_h", {2.0, 1.0}), util::CheckError);
  // Re-registering under a different kind is a contract violation.
  reg.counter("nwlb_kind_total");
  EXPECT_THROW(reg.gauge("nwlb_kind_total"), util::CheckError);
}

TEST(ObsTraceRing, WrapsKeepingTheNewestEvents) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i)
    ring.push("scope", "event", static_cast<double>(i));
  EXPECT_EQ(ring.total_pushed(), 5u);
  const std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events.front().value, 2.0);
  EXPECT_DOUBLE_EQ(events.back().value, 4.0);
  EXPECT_EQ(events.back().sequence, 4u);  // Monotonic, oldest-first order.
  EXPECT_LT(events.front().sequence, events.back().sequence);
}

// Run in CI's TSan job (name matches the ThreadPool regex): workers share
// live Counters/Gauges/Histograms while the main thread snapshots — any
// lock or ordering bug in the wait-free write paths shows up as a race.
TEST(ObsThreadPoolTest, ConcurrentWritersAndSnapshotReader) {
  Registry reg;
  constexpr int kWorkers = 4;
  constexpr int kIncrements = 5000;
  Counter& shared = reg.counter("nwlb_stress_total");
  Histogram& hist = reg.histogram("nwlb_stress_seconds", {0.25, 0.5, 0.75});
  util::ThreadPool pool(kWorkers);
  std::atomic<int> done{0};
  for (int w = 0; w < kWorkers; ++w) {
    pool.submit([&reg, &shared, &hist, &done, w] {
      Counter& mine =
          reg.counter("nwlb_stress_worker_total", {{"worker", std::to_string(w)}});
      for (int i = 0; i < kIncrements; ++i) {
        shared.inc();
        mine.inc();
        hist.observe(static_cast<double>(i % 4) * 0.25);
        reg.gauge("nwlb_stress_level").set(static_cast<double>(i));
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Snapshot concurrently with the writers: values are per-sample atomic.
  while (done.load(std::memory_order_relaxed) < kWorkers) {
    const Snapshot snap = reg.snapshot();
    EXPECT_LE(snap.samples.size(), 2u + 1u + kWorkers);
  }
  pool.wait_idle();
  EXPECT_EQ(shared.value(), static_cast<std::uint64_t>(kWorkers) * kIncrements);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kWorkers) * kIncrements);
  for (int w = 0; w < kWorkers; ++w)
    EXPECT_EQ(
        reg.counter("nwlb_stress_worker_total", {{"worker", std::to_string(w)}})
            .value(),
        static_cast<std::uint64_t>(kIncrements));
}

}  // namespace
}  // namespace nwlb::obs
