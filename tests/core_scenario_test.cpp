// Scenario assembly, placement strategies, controller epochs.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/scenario.h"
#include "topo/topology.h"
#include "traffic/matrix.h"
#include "traffic/variability.h"

namespace nwlb::core {
namespace {

struct ScenarioFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;

  ScenarioFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))) {}
};

TEST(Scenario, ProvisioningMakesIngressLoadOne) {
  ScenarioFixture f;
  const Scenario scenario(f.topology, f.tm);
  const auto loads = Scenario::ingress_pop_loads(scenario.routing(), scenario.classes(),
                                                 nids::Footprint{});
  EXPECT_NEAR(*std::max_element(loads.begin(), loads.end()), scenario.base_capacity(),
              1e-9);
}

TEST(Scenario, PlacementStrategiesAllValid) {
  ScenarioFixture f;
  const topo::Routing routing(f.topology.graph);
  for (auto placement : {DcPlacement::kMostOriginating, DcPlacement::kMostObserved,
                         DcPlacement::kMostPaths, DcPlacement::kMedoid}) {
    const topo::NodeId pop = Scenario::place_datacenter(routing, f.tm, placement);
    EXPECT_GE(pop, 0);
    EXPECT_LT(pop, f.topology.graph.num_nodes());
  }
}

TEST(Scenario, MostOriginatingIsBiggestGravityNode) {
  ScenarioFixture f;
  const topo::Routing routing(f.topology.graph);
  const topo::NodeId pop =
      Scenario::place_datacenter(routing, f.tm, DcPlacement::kMostOriginating);
  EXPECT_EQ(f.topology.graph.name(pop), "NewYork");
}

TEST(Scenario, ProblemShapesPerArchitecture) {
  ScenarioFixture f;
  const Scenario scenario(f.topology, f.tm);
  const ProblemInput ingress = scenario.problem(Architecture::kIngress);
  EXPECT_FALSE(ingress.has_datacenter());
  EXPECT_EQ(ingress.capacities.num_nodes(), 11);

  const ProblemInput replicate = scenario.problem(Architecture::kPathReplicate);
  EXPECT_TRUE(replicate.has_datacenter());
  EXPECT_EQ(replicate.capacities.num_nodes(), 12);
  EXPECT_NEAR(replicate.capacities.of(11, nids::Resource::kCpu),
              10.0 * scenario.base_capacity(), 1e-6);
  for (const auto& mirrors : replicate.mirror_sets)
    EXPECT_EQ(mirrors, (std::vector<int>{11}));

  const ProblemInput onehop = scenario.problem(Architecture::kLocalOffload1);
  EXPECT_FALSE(onehop.has_datacenter());
  for (int j = 0; j < 11; ++j) {
    const auto expected = f.topology.graph.neighborhood(j, 1);
    EXPECT_EQ(onehop.mirror_sets[static_cast<std::size_t>(j)].size(), expected.size());
  }

  const ProblemInput augmented = scenario.problem(Architecture::kPathAugmented);
  EXPECT_NEAR(augmented.capacities.of(0, nids::Resource::kCpu),
              scenario.base_capacity() * (1.0 + 10.0 / 11.0), 1e-6);

  const ProblemInput combo = scenario.problem(Architecture::kDcPlusOneHop);
  EXPECT_TRUE(combo.has_datacenter());
  EXPECT_GT(combo.mirror_sets[0].size(), 1u);
}

TEST(Scenario, SetTrafficKeepsProvisioning) {
  ScenarioFixture f;
  Scenario scenario(f.topology, f.tm);
  const double cap = scenario.base_capacity();
  traffic::TrafficMatrix doubled = f.tm;
  doubled.scale(2.0);
  scenario.set_traffic(doubled);
  EXPECT_DOUBLE_EQ(scenario.base_capacity(), cap);
  // Ingress under doubled traffic now exceeds provisioned capacity.
  const Assignment a = scenario.solve(Architecture::kIngress);
  EXPECT_NEAR(a.load_cost, 2.0, 1e-9);
}

TEST(Scenario, ArchitectureNames) {
  EXPECT_STREQ(to_string(Architecture::kPathReplicate), "Path,Replicate");
  EXPECT_STREQ(to_string(DcPlacement::kMedoid), "medoid");
}

TEST(Controller, EpochsProduceConfigsAndWarmStarts) {
  ScenarioFixture f;
  Controller controller(f.topology, f.tm, Architecture::kPathReplicate);
  const traffic::VariabilityModel model(traffic::abilene_like_factor_cdf());
  const auto tms = model.sample_many(f.tm, 3, 17);

  const EpochResult first = controller.run({.tm = &tms[0]});
  EXPECT_FALSE(first.warm_started);
  EXPECT_EQ(first.bundle.configs.size(), 11u);
  EXPECT_EQ(first.bundle.generation, 1u);
  EXPECT_GT(first.iterations, 0);

  const EpochResult second = controller.run({.tm = &tms[1]});
  EXPECT_TRUE(second.warm_started);
  EXPECT_LE(second.iterations, first.iterations);
  EXPECT_EQ(controller.epochs_run(), 2);

  // Warm-started epochs still produce optimal, fully covered assignments.
  for (double cov : second.assignment.coverage) EXPECT_NEAR(cov, 1.0, 1e-6);
}

TEST(Controller, ScanAggregationEpochs) {
  ScenarioFixture f;
  ControllerOptions options;
  options.architecture = Architecture::kPathReplicate;
  options.enable_scan_aggregation = true;
  options.aggregation.beta = 0.05;
  Controller controller(f.topology, f.tm, options);
  const EpochResult first = controller.run({.tm = &f.tm});
  ASSERT_TRUE(first.scan.has_value());
  EXPECT_GT(first.scan->comm_cost, -1e-9);
  // Scan coverage is complete every epoch.
  for (std::size_t c = 0; c < first.scan->process.size(); ++c) {
    double total = 0.0;
    for (const auto& share : first.scan->process[c]) total += share.fraction;
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  const EpochResult second = controller.run({.tm = &f.tm});
  EXPECT_TRUE(second.warm_started);
  ASSERT_TRUE(second.scan.has_value());
}

TEST(Controller, IngressControllerNeedsNoLp) {
  ScenarioFixture f;
  Controller controller(f.topology, f.tm, Architecture::kIngress);
  const EpochResult result = controller.run({.tm = &f.tm});
  EXPECT_EQ(result.iterations, 0);
  EXPECT_NEAR(result.assignment.load_cost, 1.0, 1e-9);
}

}  // namespace
}  // namespace nwlb::core
