// Sketch-based scan detection: accuracy vs the exact detector, union-merge
// correctness (the property that makes flow-level splits aggregation-safe).
#include "nids/approx_scan.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nwlb::nids {
namespace {

TEST(ApproxScan, TracksExactDetectorOnSmallCounts) {
  ScanDetector exact;
  ApproxScanDetector approx(12);
  nwlb::util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto src = static_cast<std::uint32_t>(1 + rng.below(5));
    const auto dst = static_cast<std::uint32_t>(rng.below(300));
    exact.observe(src, dst);
    approx.observe(src, dst);
  }
  const auto e = exact.report();
  const auto a = approx.report();
  ASSERT_EQ(e.size(), a.size());
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(e[i].source, a[i].source);
    EXPECT_NEAR(a[i].distinct_destinations, e[i].distinct_destinations,
                std::max(3.0, 0.1 * e[i].distinct_destinations));
  }
}

TEST(ApproxScan, AlertsAgreeWithExactAwayFromThreshold) {
  ScanDetector exact;
  ApproxScanDetector approx(12);
  // One loud scanner (200 dsts), many quiet sources (2 dsts).
  for (std::uint32_t d = 0; d < 200; ++d) {
    exact.observe(7, d);
    approx.observe(7, d);
  }
  for (std::uint32_t s = 100; s < 140; ++s) {
    for (std::uint32_t d = 0; d < 2; ++d) {
      exact.observe(s, d);
      approx.observe(s, d);
    }
  }
  // Threshold far from both clusters: identical alert sets.
  EXPECT_EQ(approx.alerts(50).size(), 1u);
  EXPECT_EQ(approx.alerts(50)[0].source, 7u);
  EXPECT_EQ(exact.alerts(50).size(), 1u);
}

TEST(ApproxScan, MergeIsUnionNotSum) {
  // The same destinations observed at two vantage points must not double
  // count — this is what count-based flow-level reports get wrong (Fig. 8)
  // and sketch reports get right.
  ApproxScanDetector a(11), b(11);
  for (std::uint32_t d = 0; d < 500; ++d) {
    a.observe(1, d);
    b.observe(1, d);  // Identical destination set.
  }
  a.merge(b);
  const auto report = a.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NEAR(report[0].distinct_destinations, 500.0, 50.0);  // Not ~1000.
}

TEST(ApproxScan, MergeCoversDisjointSources) {
  ApproxScanDetector a(10), b(10);
  a.observe(1, 10);
  b.observe(2, 20);
  a.merge(b);
  EXPECT_EQ(a.num_sources(), 2u);
}

TEST(ApproxScan, MemoryIsBounded) {
  ApproxScanDetector approx(8);  // 256 bytes per source.
  for (std::uint32_t d = 0; d < 100000; ++d) approx.observe(42, d);
  EXPECT_EQ(approx.memory_bytes(), 256u);  // One source, fixed sketch.
  approx.clear();
  EXPECT_EQ(approx.num_sources(), 0u);
  EXPECT_THROW(ApproxScanDetector(99), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::nids
