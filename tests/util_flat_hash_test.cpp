// util::U64FlatMap: behaves exactly like unordered_map for the subset of
// operations the NIDS hot paths use, across random workloads and rehashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_hash.h"
#include "util/rng.h"

namespace nwlb::util {
namespace {

TEST(FlatHash, InsertFindRoundTrip) {
  U64FlatMap<std::uint32_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  map[42] = 7;
  map[0] = 1;
  map[~0ull] = 2;
  EXPECT_EQ(map.size(), 3u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7u);
  EXPECT_EQ(*map.find(0), 1u);
  EXPECT_EQ(*map.find(~0ull), 2u);
  EXPECT_EQ(map.find(43), nullptr);
  map[42] = 9;  // Overwrite, not duplicate.
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.find(42), 9u);
}

TEST(FlatHash, DefaultInsertsValueInitialized) {
  U64FlatMap<std::uint64_t> map;
  EXPECT_EQ(map[123], 0u);
  map[123] += 5;
  map[123] += 5;
  EXPECT_EQ(map[123], 10u);
}

TEST(FlatHash, MatchesUnorderedMapUnderRandomWorkload) {
  Rng rng(0x5eedf00d);
  U64FlatMap<std::uint32_t> flat;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  for (int i = 0; i < 50000; ++i) {
    // Narrow key range forces collisions; wide ops force rehashes.
    const std::uint64_t key = rng() % 8192;
    if (rng() % 4 == 0) {
      const auto* found = flat.find(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    } else {
      const auto value = static_cast<std::uint32_t>(rng());
      flat[key] = value;
      reference[key] = value;
    }
  }
  EXPECT_EQ(flat.size(), reference.size());
  std::size_t visited = 0;
  flat.for_each([&](std::uint64_t key, std::uint32_t value) {
    ++visited;
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatHash, ReservePreventsRehash) {
  U64FlatMap<std::uint8_t> map;
  map.reserve(10000);
  for (std::uint64_t k = 0; k < 10000; ++k) map[k] = 1;
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) ASSERT_NE(map.find(k), nullptr);
}

TEST(FlatHash, ClearEmptiesButKeepsWorking) {
  U64FlatMap<std::uint32_t> map;
  for (std::uint64_t k = 0; k < 100; ++k) map[k] = static_cast<std::uint32_t>(k);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  map[5] = 50;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(5), 50u);
}

TEST(FlatHash, SequentialKeysSpreadWithoutQuadraticProbing) {
  // Session ids are sequential; mix64 must spread them so clustering does
  // not degenerate.  Sanity: a big sequential insert stays fast and exact.
  U64FlatMap<std::uint32_t> map;
  for (std::uint64_t k = 0; k < 100000; ++k) map[k] = static_cast<std::uint32_t>(k * 3);
  EXPECT_EQ(map.size(), 100000u);
  for (std::uint64_t k = 0; k < 100000; k += 997)
    EXPECT_EQ(*map.find(k), static_cast<std::uint32_t>(k * 3));
}

}  // namespace
}  // namespace nwlb::util
