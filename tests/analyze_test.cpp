// nwlb_analyze framework: fixture corpora exercise every rule class in
// both directions (a violation that must be flagged, a near-miss that
// must not), plus suppression, rule selection, and report schemas.
//
// Fixture sources are built from string literals; the analyzer strips
// literal contents before matching, so this file does not trip the rules
// it is testing when the analyzer scans the test tree.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/analyze.h"

namespace nwlb::analyze {
namespace {

// Built by concatenation so no raw line of *this* file is itself a
// standalone hot-path marker (which would mark the test hot-path).
std::string hot_path_marker() { return std::string("// nwlb-lint: ") + "hot-path\n"; }

Result run_rule(const std::string& rule, const Corpus& corpus) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.enable_only({rule}));
  return analyzer.run(corpus);
}

std::vector<std::string> rule_names(const Result& result) {
  std::vector<std::string> names;
  for (const Finding& f : result.findings) names.push_back(f.rule);
  return names;
}

// ---- shared text utilities ----

TEST(AnalyzeSource, StripRemovesCommentsAndLiteralContents) {
  const auto lines = strip_comments_and_strings(
      "int a; // trailing new\n"
      "const char* s = \"new delete throw\";\n"
      "/* block\n"
      "   comment */ int b;\n"
      "auto r = R\"(rand() inside raw)\";\n"
      "int big = 1'000'000;\n");
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0], "int a; ");
  EXPECT_EQ(lines[1], "const char* s = ;");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], " int b;");
  EXPECT_EQ(lines[4], "auto r = ;");
  EXPECT_EQ(lines[5], "int big = 1'000'000;");
}

TEST(AnalyzeSource, HasTokenMatchesWholeIdentifiersOnly) {
  EXPECT_TRUE(has_token("x = new Foo;", "new"));
  EXPECT_FALSE(has_token("renew(); newly();", "new"));
  std::size_t at = 0;
  EXPECT_TRUE(has_token("a.renew(); new Foo;", "new", &at));
  EXPECT_EQ(at, 11u);
}

TEST(AnalyzeSource, RepoRelativeTrimsToKnownRoot) {
  EXPECT_EQ(repo_relative("/home/me/repo/src/shim/shim.h"), "src/shim/shim.h");
  EXPECT_EQ(repo_relative("../tests/sim_test.cpp"), "tests/sim_test.cpp");
  EXPECT_EQ(repo_relative("unrelated/path.h"), "unrelated/path.h");
}

TEST(AnalyzeSource, ModuleAndRankFollowTheLayeringDag) {
  EXPECT_EQ(module_of("src/util/rng.h"), "util");
  EXPECT_EQ(module_of("tools/nwlbctl.cpp"), "tools");
  EXPECT_LT(layer_rank("util"), layer_rank("obs"));
  EXPECT_EQ(layer_rank("topo"), layer_rank("lp"));
  EXPECT_LT(layer_rank("obs"), layer_rank("nids"));
  EXPECT_LT(layer_rank("nids"), layer_rank("shim"));
  EXPECT_LT(layer_rank("shim"), layer_rank("core"));
  EXPECT_LT(layer_rank("core"), layer_rank("sim"));
  EXPECT_LT(layer_rank("sim"), layer_rank("online"));
  EXPECT_LT(layer_rank("online"), layer_rank("dist"));
  EXPECT_LT(layer_rank("dist"), layer_rank("tests"));
}

TEST(AnalyzeSource, LineAllowsAcceptsBothSpellingsAndLists) {
  EXPECT_TRUE(line_allows("  // nwlb-analyze: allow(naked-new)", "naked-new"));
  EXPECT_TRUE(line_allows("  // nwlb-lint: allow(no-rand, naked-new)", "naked-new"));
  EXPECT_FALSE(line_allows("  // nwlb-analyze: allow(no-rand)", "naked-new"));
  EXPECT_FALSE(line_allows("plain code", "naked-new"));
}

// ---- ported token rules ----

TEST(AnalyzeRules, PragmaOnceFlagsHeadersOnly) {
  Corpus corpus;
  corpus.add("src/util/bad.h", "struct X {};\n");
  corpus.add("src/util/good.h", "#pragma once\nstruct Y {};\n");
  corpus.add("src/util/free.cpp", "int f() { return 0; }\n");
  const Result result = run_rule("pragma-once", corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/util/bad.h");
}

TEST(AnalyzeRules, NoRandFlagsRandButNotIdentifiersContainingIt) {
  Corpus corpus;
  corpus.add("src/util/bad.cpp", "int x = rand();\nsrand(7);\n");
  corpus.add("src/util/good.cpp", "int random_index = rng.next();\n");
  const Result result = run_rule("no-rand", corpus);
  EXPECT_EQ(result.findings.size(), 2u);
}

TEST(AnalyzeRules, NakedNewFlagsNewAndDeleteButNotDeletedFunctions) {
  Corpus corpus;
  corpus.add("src/util/bad.cpp", "auto* p = new int;\ndelete p;\n");
  corpus.add("src/util/good.cpp", "X(const X&) = delete;\n");
  const Result result = run_rule("naked-new", corpus);
  EXPECT_EQ(result.findings.size(), 2u);
}

TEST(AnalyzeRules, UsingNamespaceOnlyMattersInHeaders) {
  Corpus corpus;
  corpus.add("src/util/bad.h", "#pragma once\nusing namespace std;\n");
  corpus.add("src/util/fine.cpp", "using namespace std;\n");
  const Result result = run_rule("using-namespace", corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/util/bad.h");
  EXPECT_EQ(result.findings[0].line, 2u);
}

TEST(AnalyzeRules, ReinterpretCastIsQuarantined) {
  Corpus corpus;
  corpus.add("src/shim/bad.cpp",
             "auto* h = reinterpret_cast<Header*>(bytes);\n");
  const Result result = run_rule("reinterpret-cast", corpus);
  EXPECT_EQ(result.findings.size(), 1u);
}

TEST(AnalyzeRules, HotPathMapAndThrowOnlyApplyToMarkedFiles) {
  Corpus corpus;
  corpus.add("src/shim/hot.cpp", hot_path_marker() +
                                     "std::unordered_map<int, int> m;\n"
                                     "if (bad) throw std::runtime_error(w);\n");
  corpus.add("src/shim/cold.cpp",
             "std::unordered_map<int, int> m;\n"
             "if (bad) throw std::runtime_error(w);\n");
  EXPECT_EQ(run_rule("hot-path-map", corpus).findings.size(), 1u);
  EXPECT_EQ(run_rule("no-throw-hot-path", corpus).findings.size(), 1u);
}

TEST(AnalyzeRules, RawShimInstallFlagsBothAccessSpellings) {
  Corpus corpus;
  corpus.add("src/core/bad.cpp", "shim.install(cfg, 3);\npshim->install(cfg, 3);\n");
  corpus.add("src/core/good.cpp", "sim.install_bundle(bundle);\n");
  EXPECT_EQ(run_rule("raw-shim-install", corpus).findings.size(), 2u);
}

// ---- include graph ----

TEST(AnalyzeRules, IncludeLayeringFlagsUpwardAndPeerEdges) {
  Corpus corpus;
  corpus.add("src/util/up.h", "#pragma once\n#include \"sim/fix.h\"\n");
  corpus.add("src/sim/fix.h", "#pragma once\n");
  corpus.add("src/topo/peer.h", "#pragma once\n#include \"lp/fix.h\"\n");
  corpus.add("src/lp/fix.h", "#pragma once\n");
  corpus.add("src/sim/down.h", "#pragma once\n#include \"util/up.h\"\n");
  corpus.add("src/lp/intra.h", "#pragma once\n#include \"lp/fix.h\"\n");
  corpus.add("tests/top.cpp", "#include \"sim/fix.h\"\n");
  const Result result = run_rule("include-layering", corpus);
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].file, "src/topo/peer.h");
  EXPECT_EQ(result.findings[1].file, "src/util/up.h");
}

TEST(AnalyzeRules, IncludeCycleReportedOncePerComponent) {
  Corpus corpus;
  corpus.add("src/core/a.h", "#pragma once\n#include \"core/b.h\"\n");
  corpus.add("src/core/b.h", "#pragma once\n#include \"core/c.h\"\n");
  corpus.add("src/core/c.h", "#pragma once\n#include \"core/a.h\"\n");
  corpus.add("src/core/leaf.h", "#pragma once\n#include \"core/a.h\"\n");
  const Result result = run_rule("include-cycle", corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/core/a.h");
  EXPECT_NE(result.findings[0].message.find("src/core/a.h"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("src/core/c.h"), std::string::npos);
}

TEST(AnalyzeRules, AcyclicGraphIsClean) {
  Corpus corpus;
  corpus.add("src/core/a.h", "#pragma once\n#include \"util/b.h\"\n");
  corpus.add("src/util/b.h", "#pragma once\n");
  EXPECT_TRUE(run_rule("include-cycle", corpus).findings.empty());
}

// ---- atomics audit ----

TEST(AnalyzeRules, AtomicOrderRequiresExplicitOrder) {
  Corpus corpus;
  corpus.add("src/obs/bad.cpp",
             "std::atomic<int> a;\n"
             "int x = a.load();\n"
             "a.store(1);\n"
             "a.fetch_add(2);\n");
  corpus.add("src/obs/good.cpp",
             "std::atomic<int> a;\n"
             "int x = a.load(std::memory_order_relaxed);\n"
             "a.fetch_add(2, std::memory_order_relaxed);\n");
  const Result result = run_rule("atomic-order", corpus);
  EXPECT_EQ(result.findings.size(), 3u);
  for (const Finding& f : result.findings) EXPECT_EQ(f.file, "src/obs/bad.cpp");
}

TEST(AnalyzeRules, CompareExchangeNeedsBothOrdersAcrossLines) {
  Corpus corpus;
  corpus.add("src/obs/bad.cpp",
             "std::atomic<int> a;\n"
             "a.compare_exchange_weak(expected, desired,\n"
             "                        std::memory_order_relaxed);\n");
  corpus.add("src/obs/good.cpp",
             "std::atomic<int> a;\n"
             "a.compare_exchange_weak(expected, desired,\n"
             "                        std::memory_order_relaxed,\n"
             "                        std::memory_order_relaxed);\n");
  const Result result = run_rule("atomic-order", corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/obs/bad.cpp");
}

TEST(AnalyzeRules, StrongOrdersNeedAJustification) {
  Corpus corpus;
  corpus.add("src/obs/bad.cpp",
             "std::atomic<bool> ready;\n"
             "ready.store(true, std::memory_order_release);\n");
  corpus.add("src/obs/good.cpp",
             "std::atomic<bool> ready;\n"
             "// nwlb-analyze: order(publishes the filled buffer to readers)\n"
             "ready.store(true, std::memory_order_release);\n");
  const Result result = run_rule("atomic-order", corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/obs/bad.cpp");
  EXPECT_NE(result.findings[0].message.find("order("), std::string::npos);
}

// ---- hot-path purity ----

TEST(AnalyzeRules, HotPathPurityFlagsAllFourCategories) {
  Corpus corpus;
  corpus.add("src/shim/hot.cpp", hot_path_marker() +
                                     "auto p = std::make_unique<int>(1);\n"
                                     "std::lock_guard<std::mutex> g(mu);\n"
                                     "virtual void decode();\n"
                                     "std::cout << x;\n");
  const Result result = run_rule("hot-path-purity", corpus);
  // lock_guard + mutex count separately on the same line.
  EXPECT_EQ(result.findings.size(), 5u);
}

TEST(AnalyzeRules, HotPathPuritySkipsUnmarkedFilesPreprocessorAndRoles) {
  Corpus corpus;
  corpus.add("src/shim/cold.cpp", "auto p = std::make_unique<int>(1);\n");
  corpus.add("src/shim/hot.cpp", hot_path_marker() +
                                     "#include <mutex>\n"
                                     "const util::RoleGuard guard(reconcile_);\n"
                                     "role.assert_held();\n");
  EXPECT_TRUE(run_rule("hot-path-purity", corpus).findings.empty());
}

// ---- hot-path generator includes ----

TEST(AnalyzeRules, HotPathGeneratorsFlagsScenarioHeadersInMarkedFiles) {
  Corpus corpus;
  corpus.add("src/shim/hot.cpp", hot_path_marker() +
                                     "#include \"traffic/selfsimilar.h\"\n"
                                     "#include \"traffic/variability.h\"\n"
                                     "#include \"traffic/matrix.h\"\n");
  const Result result = run_rule("hot-path-generators", corpus);
  // Both generator headers flagged; the plain matrix header is fine —
  // the data plane is allowed to *consume* traffic, not synthesize it.
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_NE(result.findings[0].message.find("selfsimilar"), std::string::npos);
  EXPECT_NE(result.findings[1].message.find("variability"), std::string::npos);
}

TEST(AnalyzeRules, HotPathGeneratorsSkipsColdFilesAndSystemIncludes) {
  Corpus corpus;
  // Unmarked files may include the generators freely (bench, control loop).
  corpus.add("bench/cold.cpp", "#include \"traffic/selfsimilar.h\"\n");
  // A <> include of the same spelling is not a project header.
  corpus.add("src/shim/hot.cpp",
             hot_path_marker() + "#include <traffic/selfsimilar.h>\n");
  EXPECT_TRUE(run_rule("hot-path-generators", corpus).findings.empty());
}

// ---- suppression, selection ----

TEST(AnalyzeFramework, AllowAnnotationsSuppressOnOwnLineAndLineAbove) {
  Corpus corpus;
  corpus.add("src/util/a.cpp",
             "int x = rand();  // nwlb-analyze: allow(no-rand)\n"
             "// nwlb-lint: allow(no-rand)\n"
             "int y = rand();\n"
             "int z = rand();\n");
  const Result result = run_rule("no-rand", corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].line, 4u);
  EXPECT_EQ(result.suppressed, 2u);
}

TEST(AnalyzeFramework, DisableAndEnableOnlySelectRules) {
  Corpus corpus;
  corpus.add("src/util/a.cpp", "int x = rand();\nauto* p = new int;\n");

  Analyzer all;
  EXPECT_EQ(all.run(corpus).findings.size(), 2u);

  Analyzer no_rand_off;
  EXPECT_TRUE(no_rand_off.disable("no-rand"));
  EXPECT_FALSE(no_rand_off.disable("no-such-rule"));
  const Result result = no_rand_off.run(corpus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "naked-new");

  Analyzer only;
  EXPECT_FALSE(only.enable_only({"no-rand", "no-such-rule"}));
  EXPECT_TRUE(only.enable_only({"no-rand"}));
  EXPECT_EQ(rule_names(only.run(corpus)), std::vector<std::string>{"no-rand"});
}

TEST(AnalyzeFramework, DefaultRuleSetIsComplete) {
  const Analyzer analyzer;
  const Result empty = analyzer.run(Corpus{});
  std::vector<std::string> names;
  for (const RuleInfo& rule : empty.rules) names.push_back(rule.name);
  const std::vector<std::string> expected = {
      "pragma-once",      "no-rand",           "naked-new",
      "using-namespace",  "reinterpret-cast",  "hot-path-map",
      "no-throw-hot-path", "raw-shim-install", "include-layering",
      "include-cycle",    "atomic-order",      "hot-path-purity",
      "hot-path-generators"};
  EXPECT_EQ(names, expected);
}

// ---- reports ----

Result one_finding_result() {
  Corpus corpus;
  corpus.add("src/util/a.cpp", "int x = rand();\n");
  Analyzer analyzer;
  return analyzer.run(corpus);
}

TEST(AnalyzeReports, TextReportHasFindingLineAndSummary) {
  const std::string text = render_text(one_finding_result());
  EXPECT_NE(text.find("src/util/a.cpp:1: no-rand:"), std::string::npos);
  EXPECT_NE(text.find("1 file(s), 1 finding(s), 0 suppressed"),
            std::string::npos);
}

TEST(AnalyzeReports, JsonReportCarriesRulesAndFindings) {
  const std::string json = render_json(one_finding_result());
  EXPECT_NE(json.find("\"tool\": \"nwlb_analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"no-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/util/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  // Every rule appears in the rule table even without findings.
  EXPECT_NE(json.find("\"name\": \"include-cycle\""), std::string::npos);
}

TEST(AnalyzeReports, SarifReportMatchesTheSchemaShape) {
  const std::string sarif = render_sarif(one_finding_result());
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"nwlb_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/util/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

TEST(AnalyzeReports, JsonStringsAreEscaped) {
  Corpus corpus;
  corpus.add("src/util/quote\"path.cpp", "int x = rand();\n");
  Analyzer analyzer;
  const std::string json = render_json(analyzer.run(corpus));
  EXPECT_NE(json.find("quote\\\"path.cpp"), std::string::npos);
}

}  // namespace
}  // namespace nwlb::analyze
