// Make-before-break config rollout in the data plane: a mid-replay
// generation swap never drops or double-processes a session, staged
// generations retire once drained, and the sharded replay stays
// byte-identical to serial across the swap (the ParallelReplayRollout
// suite also runs under ThreadSanitizer in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "shim/bundle.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::sim {
namespace {

struct RolloutSimFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;
  core::ProblemInput input;
  core::ProblemInput ingress_input;
  shim::ConfigBundle bundle;       // Generation 1 (path-replicate plan).
  shim::ConfigBundle next_bundle;  // Generation 2 (ingress-only plan).

  RolloutSimFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        input(scenario.problem(core::Architecture::kPathReplicate)),
        ingress_input(scenario.problem(core::Architecture::kIngress)),
        bundle(core::build_bundle(input, core::ReplicationLp(input).solve(), 1)),
        next_bundle(core::build_bundle(ingress_input,
                                       core::ReplicationLp(ingress_input).solve(), 2)) {}

  TraceGenerator make_generator(std::uint64_t seed = 41) const {
    TraceConfig tc;
    tc.scanners = 0;  // generate(n) must yield exactly n sessions: the
                      // tests below do arithmetic in session-index space.
    return TraceGenerator(input.classes, tc, seed);
  }
};

void expect_identical(const ReplayStats& a, const ReplayStats& b) {
  // Exact comparisons, doubles included: every accumulated double is an
  // integer-valued work/byte count, so parallel merging must be exact.
  EXPECT_EQ(a.node_work, b.node_work);
  EXPECT_EQ(a.node_packets, b.node_packets);
  EXPECT_EQ(a.link_replicated_bytes, b.link_replicated_bytes);
  EXPECT_EQ(a.sessions_replayed, b.sessions_replayed);
  EXPECT_EQ(a.packets_replayed, b.packets_replayed);
  EXPECT_EQ(a.signature_matches, b.signature_matches);
  EXPECT_EQ(a.tunnel_frames_sent, b.tunnel_frames_sent);
  EXPECT_EQ(a.tunnel_frames_dropped, b.tunnel_frames_dropped);
  EXPECT_EQ(a.tunnel_frames_detected_lost, b.tunnel_frames_detected_lost);
  EXPECT_EQ(a.stateful_covered, b.stateful_covered);
  EXPECT_EQ(a.stateful_missed, b.stateful_missed);
  EXPECT_EQ(a.decisions_process, b.decisions_process);
  EXPECT_EQ(a.decisions_replicate, b.decisions_replicate);
  EXPECT_EQ(a.decisions_ignore, b.decisions_ignore);
  EXPECT_EQ(a.mirror_flaps, b.mirror_flaps);
}

std::uint64_t decisions_total(const ReplayStats& s) {
  return s.decisions_process + s.decisions_replicate + s.decisions_ignore +
         s.crash_skipped_packets;
}

TEST(SimRollout, MidReplaySwapConservesEverySession) {
  RolloutSimFixture f;
  ReplaySimulator sim(f.input, f.bundle);
  TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(400), generator);

  // Stage generation 2 with a 200-session drain window.
  sim.install_bundle(f.next_bundle, /*activate_at=*/600);
  EXPECT_EQ(sim.num_generations(), 2u);
  EXPECT_EQ(sim.active_generation(), 1u);  // Not yet activated.
  sim.replay(generator.generate(400), generator);

  const RolloutStats rollout = sim.rollout_stats();
  const ReplayStats stats = sim.stats();
  EXPECT_EQ(stats.sessions_replayed, 800u);
  // Exactly one generation decided each session: 600 on generation 1
  // (400 before the install + the 200-session drain window), 200 on
  // generation 2, nothing unassigned.
  EXPECT_EQ(rollout.sessions_current_generation, 600u);
  EXPECT_EQ(rollout.sessions_draining_generation, 200u);
  EXPECT_EQ(rollout.sessions_current_generation + rollout.sessions_draining_generation,
            stats.sessions_replayed);
  EXPECT_EQ(rollout.sessions_unassigned, 0u);
  EXPECT_EQ(rollout.rollouts_installed, 1u);
  // The drain completed inside the call, so generation 1 retired.
  EXPECT_EQ(rollout.generations_retired, 1u);
  EXPECT_EQ(rollout.active_generation, 2u);
  EXPECT_EQ(sim.num_generations(), 1u);
}

TEST(SimRollout, DecisionTotalsMatchNoRolloutRun) {
  // Decision volume is a pure function of the trace (sum over packets of
  // on-path shims), so a config swap may move verdicts between
  // process/replicate/ignore but never create or destroy decisions —
  // the honest "no session dropped or double-processed" check.
  RolloutSimFixture f;
  TraceGenerator generator = f.make_generator();
  const std::vector<SessionSpec> first = generator.generate(400);
  const std::vector<SessionSpec> second = generator.generate(400);

  ReplaySimulator with_swap(f.input, f.bundle);
  with_swap.replay(first, generator);
  with_swap.install_bundle(f.next_bundle, /*activate_at=*/500);
  with_swap.replay(second, generator);

  ReplaySimulator baseline(f.input, f.bundle);
  baseline.replay(first, generator);
  baseline.replay(second, generator);

  const ReplayStats swapped = with_swap.stats();
  const ReplayStats stable = baseline.stats();
  EXPECT_EQ(swapped.sessions_replayed, stable.sessions_replayed);
  EXPECT_EQ(swapped.packets_replayed, stable.packets_replayed);
  EXPECT_EQ(decisions_total(swapped), decisions_total(stable));
  EXPECT_GT(decisions_total(swapped), 0u);
}

TEST(SimRollout, ImmediateInstallActivatesForTheNextSession) {
  RolloutSimFixture f;
  ReplaySimulator sim(f.input, f.bundle);
  TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(100), generator);
  sim.install_bundle(f.next_bundle);  // activate_at = next_session_index().
  EXPECT_EQ(sim.active_generation(), 2u);
  sim.replay(generator.generate(100), generator);
  const RolloutStats rollout = sim.rollout_stats();
  EXPECT_EQ(rollout.sessions_draining_generation, 0u);
  EXPECT_EQ(rollout.sessions_current_generation, 200u);
  EXPECT_EQ(rollout.sessions_unassigned, 0u);
}

TEST(SimRollout, InstallValidation) {
  RolloutSimFixture f;
  ReplaySimulator sim(f.input, f.bundle);
  TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(50), generator);

  // Activation in the past: the sessions are already replayed.
  EXPECT_THROW(sim.install_bundle(f.next_bundle, 10), std::invalid_argument);
  // Generations must be strictly increasing.
  shim::ConfigBundle stale = f.next_bundle;
  stale.generation = 1;
  EXPECT_THROW(sim.install_bundle(stale, 100), std::invalid_argument);
  // A bundle must carry one config per PoP.
  shim::ConfigBundle short_bundle = f.next_bundle;
  short_bundle.configs.pop_back();
  EXPECT_THROW(sim.install_bundle(short_bundle, 100), std::invalid_argument);
  // Nothing above may have perturbed the installed state.
  EXPECT_EQ(sim.num_generations(), 1u);
  EXPECT_EQ(sim.active_generation(), 1u);
}

TEST(SimRollout, StagedGenerationCanBeSuperseded) {
  RolloutSimFixture f;
  ReplaySimulator sim(f.input, f.bundle);
  // Stage generation 2 far in the future, then supersede it with
  // generation 3 before any of its sessions arrive: generation 2 must
  // never serve anyone.
  sim.install_bundle(f.next_bundle, /*activate_at=*/1000);
  shim::ConfigBundle third = f.next_bundle;
  third.generation = 3;
  sim.install_bundle(third, /*activate_at=*/300);
  EXPECT_EQ(sim.num_generations(), 2u);  // Bootstrap + generation 3.

  TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(400), generator);
  EXPECT_EQ(sim.active_generation(), 3u);
  const RolloutStats rollout = sim.rollout_stats();
  EXPECT_EQ(rollout.sessions_current_generation +
                rollout.sessions_draining_generation,
            400u);
  EXPECT_EQ(rollout.sessions_unassigned, 0u);
}

TEST(SimRollout, ResetCollapsesToASingleGeneration) {
  RolloutSimFixture f;
  ReplaySimulator sim(f.input, f.bundle);
  TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(100), generator);
  sim.install_bundle(f.next_bundle, /*activate_at=*/150);
  sim.reset();
  EXPECT_EQ(sim.next_session_index(), 0u);
  EXPECT_EQ(sim.num_generations(), 1u);
  const RolloutStats rollout = sim.rollout_stats();
  EXPECT_EQ(rollout.rollouts_installed, 0u);
  EXPECT_EQ(rollout.sessions_current_generation, 0u);
  EXPECT_EQ(rollout.sessions_draining_generation, 0u);
  // The collapsed generation serves from session 0 again.
  sim.replay(generator.generate(50), generator);
  EXPECT_EQ(sim.stats().sessions_replayed, 50u);
  EXPECT_EQ(sim.rollout_stats().sessions_unassigned, 0u);
}

/// Serial-vs-sharded harness: replay, swap mid-stream with a drain
/// window, replay again; the swap point sits inside the second call.
ReplayStats run_with_swap(const RolloutSimFixture& f, int workers,
                          double loss = 0.0) {
  ReplayOptions opts;
  opts.num_workers = workers;
  opts.replication_loss = loss;
  ReplaySimulator sim(f.input, f.bundle, opts);
  TraceGenerator generator = f.make_generator();
  sim.replay(generator.generate(300), generator);
  sim.install_bundle(f.next_bundle, /*activate_at=*/450);
  sim.replay(generator.generate(500), generator);
  return sim.stats();
}

TEST(ParallelReplayRollout, ShardedMatchesSerialAcrossSwap) {
  RolloutSimFixture f;
  const ReplayStats serial = run_with_swap(f, 1);
  const ReplayStats parallel = run_with_swap(f, 4);
  ASSERT_EQ(serial.sessions_replayed, 800u);
  expect_identical(serial, parallel);
}

TEST(ParallelReplayRollout, ShardedMatchesSerialAcrossSwapUnderLoss) {
  RolloutSimFixture f;
  const ReplayStats serial = run_with_swap(f, 1, 0.3);
  const ReplayStats parallel = run_with_swap(f, 4, 0.3);
  ASSERT_GT(serial.tunnel_frames_dropped, 0u);
  expect_identical(serial, parallel);
}

TEST(ParallelReplayRollout, RolloutStatsAndMetricsShardInvariant) {
  RolloutSimFixture f;
  auto run = [&f](int workers) {
    ReplayOptions opts;
    opts.num_workers = workers;
    ReplaySimulator sim(f.input, f.bundle, opts);
    TraceGenerator generator = f.make_generator();
    sim.replay(generator.generate(300), generator);
    sim.install_bundle(f.next_bundle, /*activate_at=*/450);
    sim.replay(generator.generate(500), generator);
    obs::Registry registry;
    sim.export_metrics(registry);
    return std::make_pair(sim.rollout_stats(),
                          obs::prometheus_text(registry.snapshot()));
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial.first.sessions_current_generation,
            parallel.first.sessions_current_generation);
  EXPECT_EQ(serial.first.sessions_draining_generation,
            parallel.first.sessions_draining_generation);
  EXPECT_EQ(serial.first.sessions_unassigned, 0u);
  EXPECT_EQ(parallel.first.sessions_unassigned, 0u);
  EXPECT_EQ(serial.first.generations_retired, parallel.first.generations_retired);
  // The full exposition — including nwlb_rollout_* — is byte-identical.
  EXPECT_FALSE(serial.second.empty());
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_NE(serial.second.find("nwlb_rollout_installs_total"), std::string::npos);
}

}  // namespace
}  // namespace nwlb::sim
