// Failure injection: replication-tunnel loss and its detection impact.
#include <gtest/gtest.h>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::sim {
namespace {

struct LossFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;
  core::ProblemInput input;
  core::Assignment assignment;
  std::vector<shim::ShimConfig> configs;

  LossFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        input(scenario.problem(core::Architecture::kPathReplicate)),
        assignment(core::ReplicationLp(input).solve()),
        configs(core::build_shim_configs(input, assignment)) {}

  ReplayStats run(double loss, std::uint64_t trace_seed = 77) {
    ReplayOptions opts;
    opts.replication_loss = loss;
    ReplaySimulator sim(input, configs, opts);
    TraceConfig tc;
    tc.scanners = 0;
    TraceGenerator gen(input.classes, tc, trace_seed);
    sim.replay(gen.generate(1500), gen);
    return sim.stats();
  }
};

TEST(FailureInjection, ZeroLossIsLossless) {
  LossFixture f;
  const ReplayStats stats = f.run(0.0);
  EXPECT_GT(stats.tunnel_frames_sent, 0u);
  EXPECT_EQ(stats.tunnel_frames_dropped, 0u);
  EXPECT_EQ(stats.tunnel_frames_detected_lost, 0u);
  EXPECT_NEAR(stats.miss_rate(), 0.0, 1e-12);
}

TEST(FailureInjection, DropRateMatchesInjection) {
  LossFixture f;
  const ReplayStats stats = f.run(0.3);
  ASSERT_GT(stats.tunnel_frames_sent, 100u);
  const double observed = static_cast<double>(stats.tunnel_frames_dropped) /
                          static_cast<double>(stats.tunnel_frames_sent);
  EXPECT_NEAR(observed, 0.3, 0.05);
}

TEST(FailureInjection, LossCausesStatefulMisses) {
  // Sessions whose coverage depends on replication lose one direction when
  // frames drop; the stateful miss rate must rise from zero.
  LossFixture f;
  const ReplayStats clean = f.run(0.0);
  const ReplayStats lossy = f.run(0.5);
  EXPECT_NEAR(clean.miss_rate(), 0.0, 1e-12);
  EXPECT_GT(lossy.miss_rate(), 0.0);
  // Lost frames also mean less work at the mirrors.
  EXPECT_LT(lossy.node_work.back(), clean.node_work.back());
}

TEST(FailureInjection, ReceiversDetectSequenceGaps) {
  LossFixture f;
  const ReplayStats stats = f.run(0.25);
  ASSERT_GT(stats.tunnel_frames_dropped, 0u);
  // Gap-based detection misses only trailing losses per (sender, stream);
  // the bulk must be observed.
  EXPECT_GE(stats.tunnel_frames_detected_lost,
            stats.tunnel_frames_dropped * 8 / 10);
  EXPECT_LE(stats.tunnel_frames_detected_lost, stats.tunnel_frames_dropped);
}

TEST(FailureInjection, DeterministicInSeed) {
  LossFixture f;
  ReplayOptions opts;
  opts.replication_loss = 0.2;
  opts.seed = 9;
  auto run_with = [&](ReplayOptions o) {
    ReplaySimulator sim(f.input, f.configs, o);
    TraceConfig tc;
    tc.scanners = 0;
    TraceGenerator gen(f.input.classes, tc, 3);
    sim.replay(gen.generate(400), gen);
    return sim.stats();
  };
  const ReplayStats a = run_with(opts);
  const ReplayStats b = run_with(opts);
  EXPECT_EQ(a.tunnel_frames_dropped, b.tunnel_frames_dropped);
  EXPECT_EQ(a.stateful_missed, b.stateful_missed);
  ReplayOptions other = opts;
  other.seed = 10;
  const ReplayStats c = run_with(other);
  EXPECT_NE(a.tunnel_frames_dropped, c.tunnel_frames_dropped);
}

TEST(FailureInjection, RejectsBadProbability) {
  LossFixture f;
  ReplayOptions opts;
  opts.replication_loss = 1.5;
  EXPECT_THROW(ReplaySimulator(f.input, f.configs, opts), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::sim
