// Failure injection: replication-tunnel loss and its detection impact,
// plus the FailureSchedule fault model (crash / blackhole / link-down),
// mirror-health-driven degradation, and recovery behaviour.
#include <cmath>

#include <gtest/gtest.h>

#include "core/mapper.h"
#include "core/replication_lp.h"
#include "core/scenario.h"
#include "sim/failure.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "traffic/matrix.h"

namespace nwlb::sim {
namespace {

struct LossFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;
  core::ProblemInput input;
  core::Assignment assignment;
  shim::ConfigBundle bundle;

  LossFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm),
        input(scenario.problem(core::Architecture::kPathReplicate)),
        assignment(core::ReplicationLp(input).solve()),
        bundle(core::build_bundle(input, assignment)) {}

  ReplayStats run(double loss, std::uint64_t trace_seed = 77) {
    ReplayOptions opts;
    opts.replication_loss = loss;
    ReplaySimulator sim(input, bundle, opts);
    TraceConfig tc;
    tc.scanners = 0;
    TraceGenerator gen(input.classes, tc, trace_seed);
    sim.replay(gen.generate(1500), gen);
    return sim.stats();
  }
};

TEST(FailureInjection, ZeroLossIsLossless) {
  LossFixture f;
  const ReplayStats stats = f.run(0.0);
  EXPECT_GT(stats.tunnel_frames_sent, 0u);
  EXPECT_EQ(stats.tunnel_frames_dropped, 0u);
  EXPECT_EQ(stats.tunnel_frames_detected_lost, 0u);
  EXPECT_NEAR(stats.miss_rate(), 0.0, 1e-12);
}

TEST(FailureInjection, DropRateMatchesInjection) {
  LossFixture f;
  const ReplayStats stats = f.run(0.3);
  ASSERT_GT(stats.tunnel_frames_sent, 100u);
  const double observed = static_cast<double>(stats.tunnel_frames_dropped) /
                          static_cast<double>(stats.tunnel_frames_sent);
  EXPECT_NEAR(observed, 0.3, 0.05);
}

TEST(FailureInjection, LossCausesStatefulMisses) {
  // Sessions whose coverage depends on replication lose one direction when
  // frames drop; the stateful miss rate must rise from zero.
  LossFixture f;
  const ReplayStats clean = f.run(0.0);
  const ReplayStats lossy = f.run(0.5);
  EXPECT_NEAR(clean.miss_rate(), 0.0, 1e-12);
  EXPECT_GT(lossy.miss_rate(), 0.0);
  // Lost frames also mean less work at the mirrors.
  EXPECT_LT(lossy.node_work.back(), clean.node_work.back());
}

TEST(FailureInjection, ReceiversDetectSequenceGaps) {
  LossFixture f;
  const ReplayStats stats = f.run(0.25);
  ASSERT_GT(stats.tunnel_frames_dropped, 0u);
  // Gap-based detection misses only trailing losses per (sender, stream);
  // the bulk must be observed.
  EXPECT_GE(stats.tunnel_frames_detected_lost,
            stats.tunnel_frames_dropped * 8 / 10);
  EXPECT_LE(stats.tunnel_frames_detected_lost, stats.tunnel_frames_dropped);
}

TEST(FailureInjection, DeterministicInSeed) {
  LossFixture f;
  ReplayOptions opts;
  opts.replication_loss = 0.2;
  opts.seed = 9;
  auto run_with = [&](ReplayOptions o) {
    ReplaySimulator sim(f.input, f.bundle, o);
    TraceConfig tc;
    tc.scanners = 0;
    TraceGenerator gen(f.input.classes, tc, 3);
    sim.replay(gen.generate(400), gen);
    return sim.stats();
  };
  const ReplayStats a = run_with(opts);
  const ReplayStats b = run_with(opts);
  EXPECT_EQ(a.tunnel_frames_dropped, b.tunnel_frames_dropped);
  EXPECT_EQ(a.stateful_missed, b.stateful_missed);
  ReplayOptions other = opts;
  other.seed = 10;
  const ReplayStats c = run_with(other);
  EXPECT_NE(a.tunnel_frames_dropped, c.tunnel_frames_dropped);
}

TEST(FailureInjection, RejectsBadProbability) {
  LossFixture f;
  ReplayOptions opts;
  opts.replication_loss = 1.5;
  EXPECT_THROW(ReplaySimulator(f.input, f.bundle, opts), std::invalid_argument);
}

TEST(FailureInjection, EmptyTraceRatiosAreZeroNotNaN) {
  // Regression: every ratio accessor must guard its denominator.  A fresh
  // simulator (and a replay of zero sessions) reports 0.0, never NaN.
  const ReplayStats fresh;
  EXPECT_EQ(fresh.miss_rate(), 0.0);
  EXPECT_EQ(fresh.coverage(), 0.0);
  EXPECT_EQ(fresh.tunnel_drop_rate(), 0.0);
  EXPECT_EQ(fresh.detected_loss_rate(), 0.0);

  LossFixture f;
  ReplaySimulator sim(f.input, f.bundle, {});
  TraceConfig tc;
  TraceGenerator gen(f.input.classes, tc, 1);
  const std::vector<SessionSpec> empty;
  sim.replay(empty, gen);
  const ReplayStats stats = sim.stats();
  EXPECT_EQ(stats.sessions_replayed, 0u);
  EXPECT_FALSE(std::isnan(stats.miss_rate()));
  EXPECT_FALSE(std::isnan(stats.coverage()));
  EXPECT_FALSE(std::isnan(stats.tunnel_drop_rate()));
  EXPECT_FALSE(std::isnan(stats.detected_loss_rate()));
  EXPECT_EQ(stats.miss_rate(), 0.0);
  EXPECT_EQ(stats.coverage(), 0.0);
}

// ---------------------------------------------------------------------------
// FailureSchedule: the parse grammar and event validation.

TEST(FailureScheduleSpec, ParseRoundTrips) {
  const FailureSchedule parsed = FailureSchedule::parse(
      "linkdown 7 0 100\n"
      "crash 3 1600 4000\n"
      "# comment line\n"
      "blackhole 11 2400 - 0.5");
  ASSERT_EQ(parsed.events().size(), 3u);
  EXPECT_EQ(parsed.events()[0].kind, FailureKind::kLinkDown);
  EXPECT_EQ(parsed.events()[1].kind, FailureKind::kNodeCrash);
  EXPECT_EQ(parsed.events()[1].target, 3);
  EXPECT_EQ(parsed.events()[1].begin, 1600u);
  EXPECT_EQ(parsed.events()[1].end, 4000u);
  EXPECT_EQ(parsed.events()[2].kind, FailureKind::kMirrorBlackhole);
  EXPECT_EQ(parsed.events()[2].end, FailureEvent::kNever);
  EXPECT_DOUBLE_EQ(parsed.events()[2].severity, 0.5);

  // to_string re-parses to the same event list.
  const FailureSchedule again = FailureSchedule::parse(parsed.to_string());
  ASSERT_EQ(again.events().size(), parsed.events().size());
  for (std::size_t i = 0; i < parsed.events().size(); ++i) {
    EXPECT_EQ(again.events()[i].kind, parsed.events()[i].kind);
    EXPECT_EQ(again.events()[i].target, parsed.events()[i].target);
    EXPECT_EQ(again.events()[i].begin, parsed.events()[i].begin);
    EXPECT_EQ(again.events()[i].end, parsed.events()[i].end);
    EXPECT_DOUBLE_EQ(again.events()[i].severity, parsed.events()[i].severity);
  }

  // Semicolons separate events like newlines (the --failures inline form).
  EXPECT_EQ(FailureSchedule::parse("crash 1 0 10; crash 2 5 15").events().size(), 2u);
}

TEST(FailureScheduleSpec, ParseRejectsBadInput) {
  EXPECT_THROW(FailureSchedule::parse("explode 3 0 10"), std::invalid_argument);
  EXPECT_THROW(FailureSchedule::parse("crash 3"), std::invalid_argument);
  EXPECT_THROW(FailureSchedule::parse("crash 3 10 5"), std::invalid_argument);   // end < begin
  EXPECT_THROW(FailureSchedule::parse("crash 3 0 10 2.0"), std::invalid_argument);  // severity > 1
  EXPECT_THROW(FailureSchedule::parse("crash -1 0 10"), std::invalid_argument);  // bad target
}

TEST(FailureScheduleSpec, ParseRejectsOutOfOrderEvents) {
  // Timeline order: an event whose begin precedes its predecessor's is a
  // spec typo, not an alternate ordering.
  try {
    FailureSchedule::parse("crash 3 1600 4000; linkdown 7 0 100");
    FAIL() << "out-of-order schedule accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("out-of-order"), std::string::npos)
        << e.what();
  }
  // Equal begins are fine (simultaneous faults are legitimate).
  EXPECT_EQ(FailureSchedule::parse("crash 1 100 200; blackhole 2 100 300")
                .events()
                .size(),
            2u);
}

TEST(FailureScheduleSpec, ParseRejectsDuplicateEvents) {
  try {
    FailureSchedule::parse("crash 3 100 200\ncrash 3 100 200");
    FAIL() << "duplicate schedule accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
  // Same target at a different window is not a duplicate.
  EXPECT_EQ(FailureSchedule::parse("crash 3 100 200; crash 3 300 400")
                .events()
                .size(),
            2u);
}

TEST(FailureScheduleSpec, ControllerEventsParseAndQuery) {
  const FailureSchedule schedule = FailureSchedule::parse(
      "controller_crash 0 800 2400\n"
      "partition 1 3200 4000");
  ASSERT_EQ(schedule.events().size(), 2u);
  EXPECT_EQ(schedule.events()[0].kind, FailureKind::kControllerCrash);
  EXPECT_EQ(schedule.events()[1].kind, FailureKind::kPartition);

  EXPECT_FALSE(schedule.controller_crashed(0, 799));
  EXPECT_TRUE(schedule.controller_crashed(0, 800));
  EXPECT_TRUE(schedule.controller_crashed(0, 2399));
  EXPECT_FALSE(schedule.controller_crashed(0, 2400));
  EXPECT_FALSE(schedule.controller_crashed(1, 1000));

  EXPECT_EQ(schedule.partition_mask_at(3199), 0u);
  EXPECT_EQ(schedule.partition_mask_at(3200), 1u);
  EXPECT_EQ(schedule.partition_mask_at(4000), 0u);

  // Control-plane events are invisible to the data-plane failure report.
  EXPECT_TRUE(schedule.failed_nodes_at(1000).empty());
  EXPECT_TRUE(schedule.failed_nodes_at(3500).empty());

  // An all-zeros partition mask splits nothing and is rejected.
  EXPECT_THROW(FailureSchedule::parse("partition 0 100 200"), std::invalid_argument);

  // Round-trip through to_string survives the strict parser.
  const FailureSchedule again = FailureSchedule::parse(schedule.to_string());
  ASSERT_EQ(again.events().size(), 2u);
  EXPECT_EQ(again.events()[0].kind, FailureKind::kControllerCrash);
  EXPECT_EQ(again.events()[1].target, 1);
}

TEST(FailureScheduleSpec, ActivityQueries) {
  FailureSchedule schedule;
  FailureEvent crash;
  crash.kind = FailureKind::kNodeCrash;
  crash.target = 4;
  crash.begin = 100;
  crash.end = 200;
  schedule.add(crash);
  EXPECT_FALSE(schedule.node_crashed(4, 99));
  EXPECT_TRUE(schedule.node_crashed(4, 100));
  EXPECT_TRUE(schedule.node_crashed(4, 199));
  EXPECT_FALSE(schedule.node_crashed(4, 200));  // Recovery index is exclusive.
  EXPECT_FALSE(schedule.node_crashed(5, 150));
  EXPECT_EQ(schedule.failed_nodes_at(150), std::vector<int>{4});
  EXPECT_TRUE(schedule.failed_nodes_at(0).empty());
}

TEST(FailureScheduleSpec, DropsFrameIsStatelessAndMatchesSeverity) {
  FailureEvent event;
  event.id = 2;
  event.severity = 0.3;
  int dropped = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const bool a = FailureSchedule::drops_frame(event, 9, 77, static_cast<std::uint64_t>(i));
    const bool b = FailureSchedule::drops_frame(event, 9, 77, static_cast<std::uint64_t>(i));
    EXPECT_EQ(a, b);  // Pure function of its inputs.
    dropped += a ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kDraws, 0.3, 0.02);
  event.severity = 1.0;
  EXPECT_TRUE(FailureSchedule::drops_frame(event, 9, 77, 0));
  event.severity = 0.0;
  EXPECT_FALSE(FailureSchedule::drops_frame(event, 9, 77, 0));
}

// ---------------------------------------------------------------------------
// Scheduled failures driving the replay.

struct ScheduleFixture : LossFixture {
  ReplayStats run_schedule(const FailureSchedule& schedule, int workers = 1,
                           DegradePolicy policy = DegradePolicy::kFailClosed,
                           int sessions = 900, double loss = 0.0) {
    ReplayOptions opts;
    opts.num_workers = workers;
    opts.failures = &schedule;
    opts.degrade = policy;
    opts.replication_loss = loss;
    ReplaySimulator sim(input, bundle, opts);
    TraceConfig tc;
    tc.scanners = 0;
    TraceGenerator gen(input.classes, tc, 77);
    sim.replay(gen.generate(sessions), gen);
    return sim.stats();
  }
};

void expect_identical_with_failures(const ReplayStats& a, const ReplayStats& b) {
  EXPECT_EQ(a.node_work, b.node_work);
  EXPECT_EQ(a.node_packets, b.node_packets);
  EXPECT_EQ(a.link_replicated_bytes, b.link_replicated_bytes);
  EXPECT_EQ(a.sessions_replayed, b.sessions_replayed);
  EXPECT_EQ(a.packets_replayed, b.packets_replayed);
  EXPECT_EQ(a.signature_matches, b.signature_matches);
  EXPECT_EQ(a.tunnel_frames_sent, b.tunnel_frames_sent);
  EXPECT_EQ(a.tunnel_frames_dropped, b.tunnel_frames_dropped);
  EXPECT_EQ(a.tunnel_frames_blackholed, b.tunnel_frames_blackholed);
  EXPECT_EQ(a.tunnel_frames_detected_lost, b.tunnel_frames_detected_lost);
  EXPECT_EQ(a.tunnel_frames_malformed, b.tunnel_frames_malformed);
  EXPECT_EQ(a.crash_skipped_packets, b.crash_skipped_packets);
  EXPECT_EQ(a.fail_open_packets, b.fail_open_packets);
  EXPECT_EQ(a.degraded_skipped_packets, b.degraded_skipped_packets);
  EXPECT_EQ(a.stateful_covered, b.stateful_covered);
  EXPECT_EQ(a.stateful_missed, b.stateful_missed);
}

TEST(ScheduledFailures, NodeCrashSkipsWorkAndCostsCoverage) {
  ScheduleFixture f;
  const ReplayStats clean = f.run_schedule(FailureSchedule{});
  ASSERT_NEAR(clean.miss_rate(), 0.0, 1e-12);

  FailureSchedule schedule;
  FailureEvent crash;
  crash.kind = FailureKind::kNodeCrash;
  crash.target = 0;  // A PoP: its shim stops making decisions entirely.
  crash.begin = 200;
  crash.end = 700;
  schedule.add(crash);
  const ReplayStats stats = f.run_schedule(schedule);
  EXPECT_GT(stats.crash_skipped_packets, 0u);
  EXPECT_GT(stats.miss_rate(), 0.0);
  EXPECT_LT(stats.node_work[0], clean.node_work[0]);
  // Sessions outside [begin, end) are untouched, so most coverage survives.
  EXPECT_LT(stats.miss_rate(), 0.9);
}

TEST(ScheduledFailures, MirrorBlackholeEatsFramesSilently) {
  ScheduleFixture f;
  FailureSchedule schedule;
  FailureEvent hole;
  hole.kind = FailureKind::kMirrorBlackhole;
  hole.target = f.input.datacenter_id();
  hole.begin = 0;  // Permanent.
  schedule.add(hole);
  const ReplayStats stats = f.run_schedule(schedule);
  EXPECT_GT(stats.tunnel_frames_blackholed, 0u);
  // The mirror does no work on eaten frames, and sessions that depended on
  // replication lose a direction.
  EXPECT_EQ(stats.node_work[static_cast<std::size_t>(f.input.datacenter_id())], 0.0);
  EXPECT_GT(stats.miss_rate(), 0.0);
  // Blackholed frames count into the tunnel drop rate.
  EXPECT_GT(stats.tunnel_drop_rate(), 0.0);
}

TEST(ScheduledFailures, PartialSeverityEatsAFraction) {
  ScheduleFixture f;
  FailureSchedule schedule;
  FailureEvent hole;
  hole.kind = FailureKind::kMirrorBlackhole;
  hole.target = f.input.datacenter_id();
  hole.begin = 0;
  hole.severity = 0.5;
  schedule.add(hole);
  const ReplayStats half = f.run_schedule(schedule);
  ASSERT_GT(half.tunnel_frames_sent, 0u);
  EXPECT_GT(half.tunnel_frames_blackholed, 0u);
  EXPECT_LT(half.tunnel_frames_blackholed, half.tunnel_frames_sent);
  // Deterministic: the stateless hash draws reproduce exactly.
  expect_identical_with_failures(half, f.run_schedule(schedule));
}

TEST(ScheduledFailures, ParallelReplayByteIdenticalUnderEverySchedule) {
  // The acceptance bar for the fault model: for each failure kind — and a
  // combined schedule with congestion loss on top — sharded replay must
  // produce stats byte-identical to serial, including every failure
  // counter.  (Also exercised under TSan in CI.)
  ScheduleFixture f;
  const int dc = f.input.datacenter_id();

  FailureSchedule crash;
  crash.add(FailureSchedule::parse("crash 2 100 600").events()[0]);

  FailureSchedule blackhole;
  blackhole.add(FailureSchedule::parse("blackhole " + std::to_string(dc) + " 0 - 0.6").events()[0]);

  FailureSchedule linkdown;
  linkdown.add(FailureSchedule::parse("linkdown 3 50 800").events()[0]);

  FailureSchedule combined = FailureSchedule::parse(
      "linkdown 5 0 -; crash 1 100 400; blackhole " + std::to_string(dc) + " 200 700 0.5");

  for (const FailureSchedule* schedule : {&crash, &blackhole, &linkdown, &combined}) {
    for (const DegradePolicy policy : {DegradePolicy::kFailClosed, DegradePolicy::kFailOpen}) {
      const ReplayStats serial = f.run_schedule(*schedule, 1, policy, 900, 0.2);
      const ReplayStats parallel = f.run_schedule(*schedule, 4, policy, 900, 0.2);
      ASSERT_GT(serial.packets_replayed, 0u);
      expect_identical_with_failures(serial, parallel);
    }
  }
}

// ---------------------------------------------------------------------------
// Mirror health detection and degraded operation across reconcile windows.

struct WindowFixture : LossFixture {
  // Replays `windows` windows of `per_window` sessions each against one
  // persistent simulator; returns per-window stateful coverage.
  std::vector<double> run_windows(ReplaySimulator& sim, int windows, int per_window) {
    TraceConfig tc;
    tc.scanners = 0;
    TraceGenerator gen(input.classes, tc, 77);
    std::vector<double> coverage;
    for (int w = 0; w < windows; ++w) {
      const ReplayStats before = sim.stats();
      sim.replay(gen.generate(per_window), gen);
      const ReplayStats after = sim.stats();
      const std::uint64_t covered = after.stateful_covered - before.stateful_covered;
      const std::uint64_t missed = after.stateful_missed - before.stateful_missed;
      coverage.push_back(covered + missed > 0
                             ? static_cast<double>(covered) /
                                   static_cast<double>(covered + missed)
                             : 0.0);
    }
    return coverage;
  }
};

TEST(MirrorHealthReplay, DetectsCrashWithHysteresisAndObservesRecovery) {
  WindowFixture f;
  constexpr int kPerWindow = 250;
  FailureSchedule schedule;
  FailureEvent crash;
  crash.kind = FailureKind::kNodeCrash;
  crash.target = f.input.datacenter_id();
  crash.begin = 1 * kPerWindow;
  crash.end = 3 * kPerWindow;  // Crash spans windows 1 and 2.
  schedule.add(crash);

  ReplayOptions opts;
  opts.failures = &schedule;
  opts.health.down_after = 2;
  opts.health.up_after = 2;
  ReplaySimulator sim(f.input, f.bundle, opts);

  TraceConfig tc;
  tc.scanners = 0;
  TraceGenerator gen(f.input.classes, tc, 77);
  const int dc = f.input.datacenter_id();

  sim.replay(gen.generate(kPerWindow), gen);  // Window 0: healthy.
  EXPECT_FALSE(sim.mirror_down(dc));
  sim.replay(gen.generate(kPerWindow), gen);  // Window 1: first bad window.
  EXPECT_FALSE(sim.mirror_down(dc)) << "one bad window must not flap";
  sim.replay(gen.generate(kPerWindow), gen);  // Window 2: second bad window.
  EXPECT_TRUE(sim.mirror_down(dc));
  EXPECT_EQ(sim.down_mirrors(), std::vector<int>{dc});
  sim.replay(gen.generate(kPerWindow), gen);  // Window 3: crash over, 1st clean.
  EXPECT_TRUE(sim.mirror_down(dc)) << "one clean window must not flap";
  sim.replay(gen.generate(kPerWindow), gen);  // Window 4: second clean window.
  EXPECT_FALSE(sim.mirror_down(dc));
  EXPECT_TRUE(sim.down_mirrors().empty());
  EXPECT_EQ(sim.mirror_health(dc).transitions(), 2);
  EXPECT_EQ(sim.next_session_index(), 5u * kPerWindow);
}

TEST(MirrorHealthReplay, CoverageReturnsToBaselineAfterRecovery) {
  // Fail-closed, no reconfiguration: coverage dips while the crash (and
  // then the health verdict) holds, and returns to the pre-failure level
  // within one window of the health monitor clearing.
  WindowFixture f;
  constexpr int kPerWindow = 250;
  FailureSchedule schedule;
  FailureEvent crash;
  crash.kind = FailureKind::kNodeCrash;
  crash.target = f.input.datacenter_id();
  crash.begin = 1 * kPerWindow;
  crash.end = 2 * kPerWindow;  // Crash spans window 1 only.
  schedule.add(crash);

  ReplayOptions opts;
  opts.failures = &schedule;
  opts.health.down_after = 1;  // Aggressive detection for a short test.
  opts.health.up_after = 1;
  ReplaySimulator sim(f.input, f.bundle, opts);
  const std::vector<double> coverage = f.run_windows(sim, 5, kPerWindow);

  EXPECT_NEAR(coverage[0], 1.0, 1e-12) << "healthy baseline";
  EXPECT_LT(coverage[1], 1.0) << "crash window";
  EXPECT_LT(coverage[2], 1.0) << "health verdict still down (snapshot lag)";
  // Window 3 replays with the end-of-window-2 verdict; by the end of
  // window 3 the keepalive has been clean for up_after=1 windows, so
  // window 4 — one window after recovery was observable — is back at the
  // pre-failure level.
  EXPECT_NEAR(coverage[4], coverage[0], 1e-12);
  EXPECT_GT(sim.stats().degraded_skipped_packets, 0u);
}

TEST(MirrorHealthReplay, FailOpenKeepsCoverageAboveFailClosed) {
  WindowFixture f;
  constexpr int kPerWindow = 250;
  FailureSchedule schedule;
  FailureEvent hole;
  hole.kind = FailureKind::kMirrorBlackhole;
  hole.target = f.input.datacenter_id();
  hole.begin = 0;  // Permanent: every window is degraded once detected.
  schedule.add(hole);

  auto run_policy = [&](DegradePolicy policy, double headroom) {
    ReplayOptions opts;
    opts.failures = &schedule;
    opts.degrade = policy;
    opts.fail_open_headroom = headroom;
    opts.health.down_after = 1;
    ReplaySimulator sim(f.input, f.bundle, opts);
    f.run_windows(sim, 4, kPerWindow);
    return sim.stats();
  };

  const ReplayStats closed = run_policy(DegradePolicy::kFailClosed, 0.5);
  const ReplayStats open = run_policy(DegradePolicy::kFailOpen, 1.0);
  EXPECT_GT(closed.degraded_skipped_packets, 0u);
  EXPECT_EQ(closed.fail_open_packets, 0u);
  EXPECT_GT(open.fail_open_packets, 0u);
  EXPECT_GT(open.coverage(), closed.coverage());

  // Headroom 0 admits nothing: fail-open degenerates to fail-closed.
  const ReplayStats choked = run_policy(DegradePolicy::kFailOpen, 0.0);
  EXPECT_EQ(choked.fail_open_packets, 0u);
}

TEST(MirrorHealthReplay, RejectsBadHeadroom) {
  LossFixture f;
  ReplayOptions opts;
  opts.fail_open_headroom = 1.5;
  EXPECT_THROW(ReplaySimulator(f.input, f.bundle, opts), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::sim
