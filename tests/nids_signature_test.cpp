#include "nids/signature.h"

#include <gtest/gtest.h>

namespace nwlb::nids {
namespace {

TEST(SignatureEngine, FindsSingleTonePattern) {
  const SignatureEngine engine({"attack"});
  const auto matches = engine.scan("pre attack post");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].pattern_id, 0);
  EXPECT_EQ(matches[0].end_offset, 10u);  // "pre attack" is 10 bytes.
}

TEST(SignatureEngine, MultiplePatternsAndOverlaps) {
  const SignatureEngine engine({"he", "she", "his", "hers"});
  const auto matches = engine.scan("ushers");
  // Classic Aho-Corasick example: "she" at 4, "he" at 4, "hers" at 6.
  ASSERT_EQ(matches.size(), 3u);
}

TEST(SignatureEngine, NoFalsePositives) {
  const SignatureEngine engine({"evil"});
  EXPECT_TRUE(engine.scan("perfectly benign payload").empty());
  EXPECT_EQ(engine.count_matches("eviL evi evil!"), 1u);
}

TEST(SignatureEngine, PatternAtBoundaries) {
  const SignatureEngine engine({"xyz"});
  EXPECT_EQ(engine.count_matches("xyz"), 1u);
  EXPECT_EQ(engine.count_matches("xyzxyz"), 2u);
  EXPECT_EQ(engine.count_matches("xyxyz"), 1u);
  EXPECT_EQ(engine.count_matches(""), 0u);
}

TEST(SignatureEngine, RepeatedPatternInstances) {
  const SignatureEngine engine({"ab"});
  EXPECT_EQ(engine.count_matches("ababab"), 3u);
}

TEST(SignatureEngine, SubstringPatterns) {
  const SignatureEngine engine({"abc", "b"});
  const auto matches = engine.scan("abc");
  ASSERT_EQ(matches.size(), 2u);  // "b" at offset 2, "abc" at offset 3.
}

TEST(SignatureEngine, BinaryPatterns) {
  const std::string nops = "\x90\x90\x90";
  const SignatureEngine engine({nops});
  std::string payload = "aa";
  payload += nops;
  payload += "bb";
  EXPECT_EQ(engine.count_matches(payload), 1u);
}

TEST(SignatureEngine, ScanningIsStateless) {
  // The compiled automaton is immutable: repeated const scans return the
  // same result, so one engine can be shared across worker threads (the
  // parallel replay relies on this; work accounting lives in NidsNode).
  const SignatureEngine engine({"x"});
  EXPECT_EQ(engine.count_matches("x1x2x"), 3u);
  EXPECT_EQ(engine.count_matches("x1x2x"), 3u);
  EXPECT_EQ(engine.scan("axa").size(), 1u);
}

TEST(SignatureEngine, DefaultRulesCompileAndMatch) {
  const SignatureEngine engine(SignatureEngine::default_rules());
  EXPECT_GT(engine.num_patterns(), 30);
  EXPECT_GE(engine.count_matches("GET /admin/config.php HTTP/1.1"), 1u);
  EXPECT_EQ(engine.count_matches("innocuous body"), 0u);
}

TEST(SignatureEngine, RejectsEmptyPattern) {
  EXPECT_THROW(SignatureEngine({""}), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::nids
