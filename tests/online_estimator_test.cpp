// The pluggable Estimator API (DESIGN.md §15): the spec factory is the
// only construction path, so these tests drive every registered kind
// through make_estimator() — EWMA convergence and warm-up correction,
// Holt–Winters ramp tracking, var-ewma's quantized burst headroom and
// optional burst-onset snap, the class-support floor, scale anchoring,
// the gossip partial hooks, and the estimator-error metric.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "online/estimator.h"
#include "topo/topology.h"
#include "traffic/classes.h"
#include "traffic/matrix.h"

namespace nwlb::online {
namespace {

struct EstimatorFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;

  EstimatorFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}

  int num_pops() const { return topology.graph.num_nodes(); }

  std::unique_ptr<Estimator> make(std::string_view spec,
                                  const EstimatorOptions& defaults = {}) const {
    return make_estimator(spec, scenario.classes(), num_pops(), defaults);
  }

  /// One interval's data-plane counters, exactly proportional to the
  /// provisioned per-class volumes (a noiseless static-traffic window).
  std::vector<std::uint64_t> window_sessions(double scale = 1e-3) const {
    std::vector<std::uint64_t> out;
    out.reserve(scenario.classes().size());
    for (const traffic::TrafficClass& cls : scenario.classes())
      out.push_back(static_cast<std::uint64_t>(std::llround(cls.sessions * scale)));
    return out;
  }
  std::vector<std::uint64_t> window_bytes(double scale = 1e-3) const {
    // Derived from the *rounded* session counts so bytes/sessions stays
    // exactly the per-class mean session size.
    std::vector<std::uint64_t> out = window_sessions(scale);
    for (std::size_t c = 0; c < out.size(); ++c)
      out[c] = static_cast<std::uint64_t>(
          static_cast<double>(out[c]) * scenario.classes()[c].bytes_per_session);
    return out;
  }
};

// ---- The factory is the only construction path ----------------------------

TEST(EstimatorFactory, BuildsEveryRegisteredKind) {
  EstimatorFixture f;
  ASSERT_EQ(estimator_kinds().size(), 3u);
  for (std::string_view kind : estimator_kinds()) {
    const std::unique_ptr<Estimator> est = f.make(kind);
    ASSERT_NE(est, nullptr) << kind;
    EXPECT_EQ(est->kind(), kind);
    EXPECT_EQ(est->num_classes(), f.scenario.classes().size());
    EXPECT_EQ(est->intervals_observed(), 0);
  }
}

TEST(EstimatorFactory, SpecOverridesApplyOnTopOfDefaults) {
  EstimatorOptions defaults;
  defaults.window = 9;
  defaults.scale_to_total = 123.0;
  const EstimatorSpec parsed = parse_estimator_spec(
      "var-ewma:headroom=0.5,cap=0.1,burst=3,trend-window=12", defaults);
  EXPECT_EQ(parsed.kind, "var-ewma");
  EXPECT_EQ(parsed.options.window, 9);               // Default survives.
  EXPECT_DOUBLE_EQ(parsed.options.scale_to_total, 123.0);
  EXPECT_DOUBLE_EQ(parsed.options.headroom_sigmas, 0.5);
  EXPECT_DOUBLE_EQ(parsed.options.headroom_cap, 0.1);
  EXPECT_DOUBLE_EQ(parsed.options.burst_sigmas, 3.0);
  EXPECT_EQ(parsed.options.trend_window, 12);
}

TEST(EstimatorFactory, RejectionsCiteTheGrammar) {
  EstimatorFixture f;
  const auto expect_reject = [&](std::string_view spec) {
    try {
      f.make(spec);
      FAIL() << "spec accepted: " << spec;
    } catch (const std::invalid_argument& e) {
      // Every rejection names the offending spec and cites the grammar so
      // a CLI user can fix --estimator without reading the source.
      EXPECT_NE(std::string(e.what()).find("estimator spec grammar"),
                std::string::npos)
          << spec << " -> " << e.what();
    }
  };
  expect_reject("arima");                    // Unknown kind.
  expect_reject("");                         // Empty kind.
  expect_reject("ewma:gamma=1");             // Unknown key.
  expect_reject("ewma:window");              // Malformed pair (no '=').
  expect_reject("ewma:=4");                  // Malformed pair (no key).
  expect_reject("ewma:window=abc");          // Not a number.
  expect_reject("ewma:window=2.5");          // Integer key, fractional value.
  expect_reject("ewma:window=0");            // Out of domain.
  expect_reject("var-ewma:burst=-1");        // Out of domain.
  expect_reject("var-ewma:headroom=-0.1");   // Out of domain.
  expect_reject("ewma:floor=1.5");           // Out of domain.
}

TEST(EstimatorFactory, ValidatesOptionDomains) {
  EstimatorOptions bad_window;
  bad_window.window = 0;
  EXPECT_THROW(validate_estimator_options(bad_window), std::invalid_argument);
  EstimatorOptions bad_floor;
  bad_floor.support_floor = 1.0;
  EXPECT_THROW(validate_estimator_options(bad_floor), std::invalid_argument);
  EstimatorOptions bad_trend;
  bad_trend.trend_window = 0;
  EXPECT_THROW(validate_estimator_options(bad_trend), std::invalid_argument);
  EstimatorOptions bad_burst;
  bad_burst.burst_sigmas = -0.5;
  EXPECT_THROW(validate_estimator_options(bad_burst), std::invalid_argument);

  EstimatorFixture f;
  EXPECT_THROW(make_estimator("ewma", f.scenario.classes(), 0),
               std::invalid_argument);
  const std::unique_ptr<Estimator> est = f.make("ewma");
  const std::vector<std::uint64_t> wrong(f.scenario.classes().size() + 1, 1);
  EXPECT_THROW(est->observe(wrong, wrong), std::invalid_argument);
}

// ---- Shared windowed behavior (every kind) --------------------------------

TEST(Estimator, ConvergesToStaticMatrix) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.scale_to_total = f.tm.total();
  for (std::string_view kind : estimator_kinds()) {
    const std::unique_ptr<Estimator> est = f.make(kind, opts);
    const auto sessions = f.window_sessions();
    const auto bytes = f.window_bytes();
    for (int i = 0; i < 6; ++i) est->observe(sessions, bytes);
    EXPECT_EQ(est->intervals_observed(), 6);

    const traffic::TrafficMatrix estimate = est->estimate();
    // Scale anchoring: the estimate totals the provisioned volume.  This
    // holds for var-ewma too — a noiseless feed has zero innovation, so
    // no class earns headroom on top of the anchored mass.
    EXPECT_NEAR(estimate.total(), f.tm.total(), 1e-6 * f.tm.total()) << kind;
    // Shape: within rounding noise of the oracle (the ISSUE acceptance
    // tolerance is 10%; a noiseless feed should land far inside it).
    EXPECT_LT(estimation_error(estimate, f.tm), 0.02) << kind;
  }
}

TEST(Estimator, FirstWindowSeedsWithoutWarmupBias) {
  EstimatorFixture f;
  const auto sessions = f.window_sessions();
  const auto bytes = f.window_bytes();
  for (std::string_view kind : estimator_kinds()) {
    const std::unique_ptr<Estimator> est = f.make(kind);
    est->observe(sessions, bytes);
    // No decay toward the all-zero initial state: the first window is
    // taken verbatim, so one interval already reproduces the static shape.
    for (std::size_t c = 0; c < sessions.size(); ++c)
      EXPECT_DOUBLE_EQ(est->class_rate(c), static_cast<double>(sessions[c]))
          << kind << " class " << c;
  }
}

TEST(Estimator, EwmaSmoothsAStepChangeWithWarmupWeight) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 4;  // alpha = 0.4, but at t = 1 the warm-up floor 1/2 wins.
  const std::unique_ptr<Estimator> est = f.make("ewma", opts);
  const auto low = f.window_sessions(1e-3);
  const auto high = f.window_sessions(2e-3);
  est->observe(low, f.window_bytes(1e-3));
  est->observe(high, f.window_bytes(2e-3));
  const double expected =
      0.5 * static_cast<double>(high[0]) + 0.5 * static_cast<double>(low[0]);
  EXPECT_NEAR(est->class_rate(0), expected, 1e-9 * expected + 1e-9);
}

TEST(Estimator, FlashCrowdFirstWindowDecaysLikeARunningMean) {
  // Regression for the first-window seeding bias: a long window used to
  // lock an anomalous boot-time flash crowd in as the scale anchor for
  // ~window intervals.  With the warm-up floor max(alpha, 1/(t+1)) the
  // state is exactly the running mean until the floor crosses alpha.
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 16;  // alpha = 2/17 ≈ 0.118 — floor governs through t = 7.
  const std::unique_ptr<Estimator> est = f.make("ewma", opts);
  const auto flash = f.window_sessions(10e-3);  // 10x boot-time spike.
  const auto normal = f.window_sessions(1e-3);
  const auto flash_bytes = f.window_bytes(10e-3);
  const auto normal_bytes = f.window_bytes(1e-3);
  est->observe(flash, flash_bytes);
  for (int i = 0; i < 3; ++i) est->observe(normal, normal_bytes);
  const double mean4 = (static_cast<double>(flash[0]) +
                        3.0 * static_cast<double>(normal[0])) /
                       4.0;
  EXPECT_NEAR(est->class_rate(0), mean4, 1e-9 * mean4);
  // A naive EWMA at alpha = 2/17 would still carry ~69% of the spike:
  // (1 - alpha)^3 ≈ 0.687 — the running mean carries only 25%.
  const double naive = static_cast<double>(flash[0]) *
                       std::pow(1.0 - 2.0 / 17.0, 3);
  EXPECT_LT(est->class_rate(0), 0.5 * naive);
}

TEST(Estimator, SupportFloorKeepsEveryKnownPairPositive) {
  EstimatorFixture f;
  const std::unique_ptr<Estimator> est = f.make("ewma");
  // A window in which class 0 goes completely dark.
  auto sessions = f.window_sessions();
  auto bytes = f.window_bytes();
  sessions[0] = 0;
  bytes[0] = 0;
  for (int i = 0; i < 8; ++i) est->observe(sessions, bytes);

  const traffic::TrafficMatrix estimate = est->estimate();
  const traffic::TrafficClass& dark = f.scenario.classes()[0];
  // The pair must not vanish from the matrix: build_classes() would drop
  // it and the warm-started LP model shape would change between epochs.
  EXPECT_GT(estimate.volume(dark.ingress, dark.egress), 0.0);
  for (const traffic::TrafficClass& cls : f.scenario.classes())
    EXPECT_GT(estimate.volume(cls.ingress, cls.egress), 0.0) << "class " << cls.id;
}

TEST(Estimator, EstimateBeforeAnyObservationIsTheFloorMatrix) {
  EstimatorFixture f;
  const std::unique_ptr<Estimator> est = f.make("ewma");
  const traffic::TrafficMatrix estimate = est->estimate();
  // Flat floor: every known pair positive, every pair equal.
  const traffic::TrafficClass& first = f.scenario.classes().front();
  const double floor = estimate.volume(first.ingress, first.egress);
  EXPECT_GT(floor, 0.0);
  for (const traffic::TrafficClass& cls : f.scenario.classes())
    EXPECT_DOUBLE_EQ(estimate.volume(cls.ingress, cls.egress), floor);
}

TEST(Estimator, BytesPerSessionTracksTheFeed) {
  EstimatorFixture f;
  const std::unique_ptr<Estimator> est = f.make("ewma");
  est->observe(f.window_sessions(), f.window_bytes());
  const traffic::TrafficClass& cls = f.scenario.classes().front();
  // Rounding on both counters, so allow 1% slack.
  EXPECT_NEAR(est->bytes_per_session(0), cls.bytes_per_session,
              0.01 * cls.bytes_per_session);
}

TEST(Estimator, ResetForgetsEverything) {
  EstimatorFixture f;
  for (std::string_view kind : estimator_kinds()) {
    const std::unique_ptr<Estimator> est = f.make(kind);
    for (int i = 0; i < 4; ++i)
      est->observe(f.window_sessions(), f.window_bytes());
    est->reset();
    EXPECT_EQ(est->intervals_observed(), 0) << kind;
    EXPECT_DOUBLE_EQ(est->class_rate(0), 0.0) << kind;
    // The next observe() re-seeds exactly like a fresh first window.
    const auto sessions = f.window_sessions(2e-3);
    est->observe(sessions, f.window_bytes(2e-3));
    EXPECT_DOUBLE_EQ(est->class_rate(0), static_cast<double>(sessions[0]))
        << kind;
  }
}

// ---- Holt–Winters: level + trend ------------------------------------------

TEST(HoltWinters, TracksARampCloserThanEwma) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 4;
  opts.trend_window = 4;
  const std::unique_ptr<Estimator> hw = f.make("holt-winters", opts);
  const std::unique_ptr<Estimator> ewma = f.make("ewma", opts);
  // A steady linear ramp: +20% of the base per window.
  for (int t = 0; t < 10; ++t) {
    const double scale = (1.0 + 0.2 * t) * 1e-3;
    hw->observe(f.window_sessions(scale), f.window_bytes(scale));
    ewma->observe(f.window_sessions(scale), f.window_bytes(scale));
  }
  const double next = static_cast<double>(f.window_sessions(3.0e-3)[0]);
  // The one-step forecast level + trend lands closer to the next ramp
  // value than the chronically-lagging EWMA level.
  EXPECT_LT(std::abs(hw->class_rate(0) - next),
            std::abs(ewma->class_rate(0) - next));
  // And the trend pushes the forecast *ahead* of the lagging EWMA.
  EXPECT_GT(hw->class_rate(0), ewma->class_rate(0));
}

TEST(HoltWinters, CollapsingClassNeverForecastsNegative) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 2;
  opts.trend_window = 2;
  const std::unique_ptr<Estimator> hw = f.make("holt-winters", opts);
  // Crash from full volume to nothing: the learned negative trend must
  // not drive the rate forecast below zero.
  hw->observe(f.window_sessions(), f.window_bytes());
  const std::vector<std::uint64_t> zeros(f.scenario.classes().size(), 0);
  for (int i = 0; i < 6; ++i) hw->observe(zeros, zeros);
  for (std::size_t c = 0; c < zeros.size(); ++c)
    EXPECT_GE(hw->class_rate(c), 0.0) << "class " << c;
}

// ---- var-ewma: quantized burst headroom + optional snap -------------------

TEST(VarEwma, SteadyFeedMatchesPlainEwmaExactly) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.scale_to_total = f.tm.total();
  const std::unique_ptr<Estimator> ve = f.make("var-ewma", opts);
  const std::unique_ptr<Estimator> ewma = f.make("ewma", opts);
  const auto sessions = f.window_sessions();
  const auto bytes = f.window_bytes();
  for (int i = 0; i < 8; ++i) {
    ve->observe(sessions, bytes);
    ewma->observe(sessions, bytes);
  }
  // Zero innovations -> zero sigma-hat -> zero headroom: on calm traffic
  // the burst-aware estimator produces the *same plan inputs* as plain
  // ewma, which is why its rollout churn matches on Hurst-0.5 traffic.
  for (std::size_t c = 0; c < sessions.size(); ++c)
    EXPECT_NEAR(ve->class_rate(c), ewma->class_rate(c),
                1e-9 * (ewma->class_rate(c) + 1.0))
        << "class " << c;
  EXPECT_NEAR(estimation_error(ve->estimate(), ewma->estimate()), 0.0, 1e-9);
}

TEST(VarEwma, VolatileClassGetsQuantizedCappedHeadroom) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 4;
  opts.trend_window = 6;
  opts.headroom_sigmas = 1.0;
  opts.headroom_cap = 0.2;
  // No scale anchoring: volumes stay in raw counter units so the
  // inflation is directly readable off the estimate.
  const std::unique_ptr<Estimator> ve = f.make("var-ewma", opts);
  const std::unique_ptr<Estimator> ewma = f.make("ewma", opts);
  // Class 0 alternates 0.5x / 1.5x around the mean; every other class is
  // steady — only the volatile class should earn a hedge.
  for (int t = 0; t < 12; ++t) {
    auto sessions = f.window_sessions();
    auto bytes = f.window_bytes();
    const double swing = (t % 2 == 0) ? 0.5 : 1.5;
    sessions[0] = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(sessions[0]) * swing));
    ve->observe(sessions, bytes);
    ewma->observe(sessions, bytes);
  }
  const traffic::TrafficMatrix est_ve = ve->estimate();
  const traffic::TrafficMatrix est_ew = ewma->estimate();
  const traffic::TrafficClass& volatile_cls = f.scenario.classes()[0];
  const traffic::TrafficClass& steady_cls = f.scenario.classes()[1];
  // The tracked levels agree (same smoothing recursion)...
  EXPECT_NEAR(ve->class_rate(0), ewma->class_rate(0),
              1e-9 * ewma->class_rate(0));
  // ...so any volume difference is pure headroom.  It must be present,
  // a multiple of the 0.05 quantization step, and at most the cap.
  const double inflation =
      est_ve.volume(volatile_cls.ingress, volatile_cls.egress) /
          est_ew.volume(volatile_cls.ingress, volatile_cls.egress) -
      1.0;
  EXPECT_GT(inflation, 0.0);
  EXPECT_LE(inflation, opts.headroom_cap + 1e-9);
  const double steps = inflation / 0.05;
  EXPECT_NEAR(steps, std::round(steps), 1e-6)
      << "headroom " << inflation << " is not a 0.05-step multiple";
  // The steady class earned no hedge.
  EXPECT_NEAR(est_ve.volume(steady_cls.ingress, steady_cls.egress),
              est_ew.volume(steady_cls.ingress, steady_cls.egress),
              1e-9 * est_ew.volume(steady_cls.ingress, steady_cls.egress));
}

TEST(VarEwma, BurstTriggerSnapsUpButSmoothsDown) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 4;  // alpha = 0.4 once warmed up.
  opts.burst_sigmas = 2.0;
  const std::unique_ptr<Estimator> snap = f.make("var-ewma", opts);
  EstimatorOptions no_burst = opts;
  no_burst.burst_sigmas = 0.0;  // The default: trigger disabled.
  const std::unique_ptr<Estimator> plain = f.make("var-ewma", no_burst);

  const auto calm = f.window_sessions(1e-3);
  const auto calm_bytes = f.window_bytes(1e-3);
  for (int i = 0; i < 4; ++i) {
    snap->observe(calm, calm_bytes);
    plain->observe(calm, calm_bytes);
  }
  // Flash onset: 10x.  Sigma-hat is ~0 after a constant feed, so the
  // jump clears any positive threshold -> the level snaps to the
  // observation instead of lagging through the crowd at alpha.
  const auto flash = f.window_sessions(10e-3);
  const auto flash_bytes = f.window_bytes(10e-3);
  snap->observe(flash, flash_bytes);
  plain->observe(flash, flash_bytes);
  EXPECT_DOUBLE_EQ(snap->class_rate(0), static_cast<double>(flash[0]));
  EXPECT_LT(plain->class_rate(0), static_cast<double>(flash[0]));

  // The way *down* always smooths — briefly over-provisioning after a
  // burst ends is the safe direction, so no symmetric down-snap.
  snap->observe(calm, calm_bytes);
  EXPECT_GT(snap->class_rate(0), static_cast<double>(calm[0]));
}

// ---- Gossip partial hooks --------------------------------------------------

TEST(Estimator, MergedPartialsEqualDirectObservation) {
  EstimatorFixture f;
  for (std::string_view kind : estimator_kinds()) {
    const std::unique_ptr<Estimator> merged = f.make(kind);
    const std::unique_ptr<Estimator> direct = f.make(kind);
    // Three origins each contribute a disjoint slice of the window.
    const auto third = f.window_sessions(1e-3);
    const auto third_bytes = f.window_bytes(1e-3);
    std::vector<std::uint64_t> sum(third.size(), 0);
    std::vector<std::uint64_t> sum_bytes(third.size(), 0);
    merged->begin_partials();
    for (int origin = 0; origin < 3; ++origin) {
      merged->merge_partial(third, third_bytes);
      for (std::size_t c = 0; c < third.size(); ++c) {
        sum[c] += third[c];
        sum_bytes[c] += third_bytes[c];
      }
    }
    merged->commit_partials();
    direct->observe(sum, sum_bytes);
    for (std::size_t c = 0; c < sum.size(); ++c)
      EXPECT_DOUBLE_EQ(merged->class_rate(c), direct->class_rate(c))
          << kind << " class " << c;
    EXPECT_EQ(merged->merged_sessions(), sum) << kind;

    const std::vector<std::uint64_t> wrong(third.size() + 1, 1);
    EXPECT_THROW(merged->merge_partial(wrong, wrong), std::invalid_argument);
  }
}

// ---- estimation_error ------------------------------------------------------

TEST(EstimationError, IdenticalMatricesScoreZero) {
  EstimatorFixture f;
  EXPECT_DOUBLE_EQ(estimation_error(f.tm, f.tm), 0.0);
  // Scale-invariant: TV distance compares normalized shapes.
  traffic::TrafficMatrix scaled = f.tm;
  scaled.scale(7.5);
  EXPECT_NEAR(estimation_error(scaled, f.tm), 0.0, 1e-12);
}

TEST(EstimationError, DisjointSupportScoresOne) {
  traffic::TrafficMatrix a(4);
  traffic::TrafficMatrix b(4);
  a.set_volume(0, 1, 10.0);
  b.set_volume(2, 3, 3.0);
  EXPECT_NEAR(estimation_error(a, b), 1.0, 1e-12);
}

TEST(EstimationError, RejectsSizeMismatch) {
  traffic::TrafficMatrix a(4);
  traffic::TrafficMatrix b(5);
  EXPECT_THROW(estimation_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::online
