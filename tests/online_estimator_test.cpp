// Streaming traffic-matrix estimation: EWMA convergence to a static
// matrix, the class-support floor that keeps the LP model shape fixed,
// scale anchoring, and the estimator-error metric.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/scenario.h"
#include "online/estimator.h"
#include "topo/topology.h"
#include "traffic/classes.h"
#include "traffic/matrix.h"

namespace nwlb::online {
namespace {

struct EstimatorFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  core::Scenario scenario;

  EstimatorFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}

  int num_pops() const { return topology.graph.num_nodes(); }

  /// One interval's data-plane counters, exactly proportional to the
  /// provisioned per-class volumes (a noiseless static-traffic window).
  std::vector<std::uint64_t> window_sessions(double scale = 1e-3) const {
    std::vector<std::uint64_t> out;
    out.reserve(scenario.classes().size());
    for (const traffic::TrafficClass& cls : scenario.classes())
      out.push_back(static_cast<std::uint64_t>(std::llround(cls.sessions * scale)));
    return out;
  }
  std::vector<std::uint64_t> window_bytes(double scale = 1e-3) const {
    // Derived from the *rounded* session counts so bytes/sessions stays
    // exactly the per-class mean session size.
    std::vector<std::uint64_t> out = window_sessions(scale);
    for (std::size_t c = 0; c < out.size(); ++c)
      out[c] = static_cast<std::uint64_t>(
          static_cast<double>(out[c]) * scenario.classes()[c].bytes_per_session);
    return out;
  }
};

TEST(TrafficEstimator, ConvergesToStaticMatrix) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.scale_to_total = f.tm.total();
  TrafficEstimator estimator(f.scenario.classes(), f.num_pops(), opts);
  const auto sessions = f.window_sessions();
  const auto bytes = f.window_bytes();
  for (int i = 0; i < 6; ++i) estimator.observe(sessions, bytes);
  EXPECT_EQ(estimator.intervals_observed(), 6);

  const traffic::TrafficMatrix est = estimator.estimate();
  // Scale anchoring: the estimate totals the provisioned volume.
  EXPECT_NEAR(est.total(), f.tm.total(), 1e-6 * f.tm.total());
  // Shape: within rounding noise of the oracle (the ISSUE acceptance
  // tolerance is 10%; a noiseless feed should land far inside it).
  EXPECT_LT(estimation_error(est, f.tm), 0.02);
}

TEST(TrafficEstimator, FirstWindowSeedsWithoutWarmupBias) {
  EstimatorFixture f;
  TrafficEstimator estimator(f.scenario.classes(), f.num_pops());
  const auto sessions = f.window_sessions();
  const auto bytes = f.window_bytes();
  estimator.observe(sessions, bytes);
  // No decay toward the all-zero initial state: the first window is taken
  // verbatim, so one interval already reproduces the static shape.
  for (std::size_t c = 0; c < sessions.size(); ++c)
    EXPECT_DOUBLE_EQ(estimator.class_rate(c), static_cast<double>(sessions[c]));
}

TEST(TrafficEstimator, EwmaSmoothsAStepChange) {
  EstimatorFixture f;
  EstimatorOptions opts;
  opts.window = 4;  // alpha = 0.4
  TrafficEstimator estimator(f.scenario.classes(), f.num_pops(), opts);
  const auto low = f.window_sessions(1e-3);
  const auto high = f.window_sessions(2e-3);
  estimator.observe(low, f.window_bytes(1e-3));
  estimator.observe(high, f.window_bytes(2e-3));
  // One interval after the step the estimate sits strictly between the
  // old and new rates: alpha*high + (1-alpha)*low.
  const double expected =
      0.4 * static_cast<double>(high[0]) + 0.6 * static_cast<double>(low[0]);
  EXPECT_NEAR(estimator.class_rate(0), expected, 1e-9 * expected + 1e-9);
}

TEST(TrafficEstimator, SupportFloorKeepsEveryKnownPairPositive) {
  EstimatorFixture f;
  TrafficEstimator estimator(f.scenario.classes(), f.num_pops());
  // A window in which class 0 goes completely dark.
  auto sessions = f.window_sessions();
  auto bytes = f.window_bytes();
  sessions[0] = 0;
  bytes[0] = 0;
  for (int i = 0; i < 8; ++i) estimator.observe(sessions, bytes);

  const traffic::TrafficMatrix est = estimator.estimate();
  const traffic::TrafficClass& dark = f.scenario.classes()[0];
  // The pair must not vanish from the matrix: build_classes() would drop
  // it and the warm-started LP model shape would change between epochs.
  EXPECT_GT(est.volume(dark.ingress, dark.egress), 0.0);
  for (const traffic::TrafficClass& cls : f.scenario.classes())
    EXPECT_GT(est.volume(cls.ingress, cls.egress), 0.0) << "class " << cls.id;
}

TEST(TrafficEstimator, EstimateBeforeAnyObservationIsTheFloorMatrix) {
  EstimatorFixture f;
  TrafficEstimator estimator(f.scenario.classes(), f.num_pops());
  const traffic::TrafficMatrix est = estimator.estimate();
  // Flat floor: every known pair positive, every pair equal.
  const traffic::TrafficClass& first = f.scenario.classes().front();
  const double floor = est.volume(first.ingress, first.egress);
  EXPECT_GT(floor, 0.0);
  for (const traffic::TrafficClass& cls : f.scenario.classes())
    EXPECT_DOUBLE_EQ(est.volume(cls.ingress, cls.egress), floor);
}

TEST(TrafficEstimator, BytesPerSessionTracksTheFeed) {
  EstimatorFixture f;
  TrafficEstimator estimator(f.scenario.classes(), f.num_pops());
  estimator.observe(f.window_sessions(), f.window_bytes());
  const traffic::TrafficClass& cls = f.scenario.classes().front();
  // Rounding on both counters, so allow 1% slack.
  EXPECT_NEAR(estimator.bytes_per_session(0), cls.bytes_per_session,
              0.01 * cls.bytes_per_session);
}

TEST(TrafficEstimator, RejectsInvalidOptionsAndMismatchedSpans) {
  EstimatorFixture f;
  EstimatorOptions bad_window;
  bad_window.window = 0;
  EXPECT_THROW(TrafficEstimator(f.scenario.classes(), f.num_pops(), bad_window),
               std::invalid_argument);
  EstimatorOptions bad_floor;
  bad_floor.support_floor = 1.0;
  EXPECT_THROW(TrafficEstimator(f.scenario.classes(), f.num_pops(), bad_floor),
               std::invalid_argument);
  EXPECT_THROW(TrafficEstimator(f.scenario.classes(), 0), std::invalid_argument);

  TrafficEstimator estimator(f.scenario.classes(), f.num_pops());
  const std::vector<std::uint64_t> wrong(f.scenario.classes().size() + 1, 1);
  EXPECT_THROW(estimator.observe(wrong, wrong), std::invalid_argument);
}

TEST(EstimationError, IdenticalMatricesScoreZero) {
  EstimatorFixture f;
  EXPECT_DOUBLE_EQ(estimation_error(f.tm, f.tm), 0.0);
  // Scale-invariant: TV distance compares normalized shapes.
  traffic::TrafficMatrix scaled = f.tm;
  scaled.scale(7.5);
  EXPECT_NEAR(estimation_error(scaled, f.tm), 0.0, 1e-12);
}

TEST(EstimationError, DisjointSupportScoresOne) {
  traffic::TrafficMatrix a(4);
  traffic::TrafficMatrix b(4);
  a.set_volume(0, 1, 10.0);
  b.set_volume(2, 3, 3.0);
  EXPECT_NEAR(estimation_error(a, b), 1.0, 1e-12);
}

TEST(EstimationError, RejectsSizeMismatch) {
  traffic::TrafficMatrix a(4);
  traffic::TrafficMatrix b(5);
  EXPECT_THROW(estimation_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::online
