// Contract macros (util/check.h): expression + value capture in the
// diagnostic, the throw-vs-abort policy switch, and DCHECK gating.
#include <gtest/gtest.h>

#include <string>

#include "util/check.h"

namespace nwlb::util {
namespace {

// Restores the default throw policy even when an assertion fails mid-test.
struct PolicyGuard {
  ~PolicyGuard() { set_check_policy(CheckPolicy::kThrow); }
};

std::string what_of(void (*body)()) {
  try {
    body();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return {};
}

TEST(Check, PassingConditionIsSilent) {
  NWLB_CHECK(1 + 1 == 2);
  NWLB_CHECK_EQ(4, 4, "context never evaluated on success");
  NWLB_CHECK_NEAR(1.0, 1.0 + 1e-9, 1e-6);
}

TEST(Check, FailureCapturesExpressionFileAndContext) {
  const std::string what = what_of([] {
    const int class_id = 7;
    NWLB_CHECK(class_id < 3, "class ", class_id, " out of range");
  });
  EXPECT_NE(what.find("NWLB_CHECK failed"), std::string::npos) << what;
  EXPECT_NE(what.find("class_id < 3"), std::string::npos) << what;
  EXPECT_NE(what.find("class 7 out of range"), std::string::npos) << what;
  EXPECT_NE(what.find("util_check_test.cpp"), std::string::npos) << what;
}

TEST(Check, ComparisonFormsCaptureBothOperands) {
  const std::string what = what_of([] {
    const int rows = 3;
    const int expected = 5;
    NWLB_CHECK_EQ(rows, expected);
  });
  EXPECT_NE(what.find("rows == expected"), std::string::npos) << what;
  EXPECT_NE(what.find("lhs = 3"), std::string::npos) << what;
  EXPECT_NE(what.find("rhs = 5"), std::string::npos) << what;

  EXPECT_THROW(NWLB_CHECK_LT(2, 2), CheckError);
  EXPECT_THROW(NWLB_CHECK_GT(2, 2), CheckError);
  EXPECT_THROW(NWLB_CHECK_NE(2, 2), CheckError);
  EXPECT_THROW(NWLB_CHECK_LE(3, 2), CheckError);
  EXPECT_THROW(NWLB_CHECK_GE(2, 3), CheckError);
}

TEST(Check, NearCapturesGapAndTolerance) {
  const std::string what = what_of([] { NWLB_CHECK_NEAR(1.0, 2.0, 0.5); });
  EXPECT_NE(what.find("1.0 ~= 2.0"), std::string::npos) << what;
  EXPECT_NE(what.find("|lhs-rhs| = 1"), std::string::npos) << what;
  EXPECT_NE(what.find("tolerance 0.5"), std::string::npos) << what;
}

TEST(Check, ErrorIsCatchableAsInvalidArgument) {
  // Contract-stating code replaced historic throw sites that tests catch as
  // std::invalid_argument; CheckError must remain compatible.
  EXPECT_THROW(NWLB_CHECK(false), std::invalid_argument);
  EXPECT_THROW(NWLB_CHECK(false), std::logic_error);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  NWLB_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

#if NWLB_DCHECK_ENABLED
TEST(Check, DcheckActiveInDebugBuilds) {
  EXPECT_THROW(NWLB_DCHECK(false), CheckError);
  EXPECT_THROW(NWLB_DCHECK_EQ(1, 2), CheckError);
}
#else
TEST(Check, DcheckCompiledOutInReleaseBuilds) {
  NWLB_DCHECK(false);          // Must not evaluate into a failure.
  NWLB_DCHECK_EQ(1, 2);
}
#endif

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, AbortPolicyPrintsDiagnosticAndAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PolicyGuard guard;
  EXPECT_DEATH(
      {
        set_check_policy(CheckPolicy::kAbort);
        NWLB_CHECK_EQ(1, 2, "abort-policy diagnostic");
      },
      "NWLB_CHECK_EQ failed.*abort-policy diagnostic");
}

TEST(Check, PolicyRoundTrips) {
  PolicyGuard guard;
  EXPECT_EQ(check_policy(), CheckPolicy::kThrow);
  set_check_policy(CheckPolicy::kAbort);
  EXPECT_EQ(check_policy(), CheckPolicy::kAbort);
  set_check_policy(CheckPolicy::kThrow);
  EXPECT_EQ(check_policy(), CheckPolicy::kThrow);
}

}  // namespace
}  // namespace nwlb::util
