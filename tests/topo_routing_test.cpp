#include "topo/routing.h"

#include <gtest/gtest.h>

#include "topo/kshortest.h"
#include "topo/topology.h"

namespace nwlb::topo {
namespace {

Graph path_graph(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.add_node("n" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(Routing, PathOnLineGraph) {
  const Graph g = path_graph(5);
  const Routing r(g);
  EXPECT_EQ(r.path(0, 4), (Path{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.distance(0, 4), 4);
  EXPECT_EQ(r.path(2, 2), (Path{2}));
  EXPECT_EQ(r.distance(2, 2), 0);
}

TEST(Routing, SymmetricPaths) {
  for (const auto& t : {make_internet2(), make_geant(), make_enterprise()}) {
    const Routing r(t.graph);
    const int n = t.graph.num_nodes();
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        const Path& fwd = r.path(a, b);
        const Path& rev = r.path(b, a);
        ASSERT_EQ(fwd.size(), rev.size());
        EXPECT_TRUE(std::equal(fwd.begin(), fwd.end(), rev.rbegin()))
            << t.name << " " << a << "->" << b;
      }
    }
  }
}

TEST(Routing, PathsAreShortest) {
  const auto t = make_internet2();
  const Routing r(t.graph);
  const int n = t.graph.num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      EXPECT_EQ(static_cast<int>(r.path(a, b).size()) - 1, r.distance(a, b));
      // Consecutive path nodes must be adjacent.
      const Path& p = r.path(a, b);
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_TRUE(t.graph.has_edge(p[i], p[i + 1]));
    }
  }
}

TEST(Routing, OnPathAndLinks) {
  const Graph g = path_graph(4);
  const Routing r(g);
  EXPECT_TRUE(r.on_path(1, 0, 3));
  EXPECT_FALSE(r.on_path(3, 0, 1));
  const auto& links = r.links_on_path(0, 3);
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(g.link_endpoints(links[0]), (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(g.link_endpoints(links[2]), (std::pair<NodeId, NodeId>{2, 3}));
  // Reverse direction uses the opposite directed links.
  EXPECT_NE(links[0], r.links_on_path(3, 0)[2]);
}

TEST(Routing, AllPairsCount) {
  const Graph g = path_graph(4);
  const Routing r(g);
  EXPECT_EQ(r.all_pairs().size(), 12u);
}

TEST(Routing, RequiresConnectedGraph) {
  Graph g = path_graph(3);
  g.add_node("island");
  EXPECT_THROW(Routing{g}, std::invalid_argument);
}

TEST(Routing, MedoidOfLineIsCenter) {
  const Graph g = path_graph(5);
  const Routing r(g);
  EXPECT_EQ(medoid_node(r), 2);
}

TEST(Routing, BetweennessOfStarIsHub) {
  Graph g;
  g.add_node("hub");
  for (int i = 1; i <= 4; ++i) {
    g.add_node("leaf" + std::to_string(i));
    g.add_edge(0, i);
  }
  const Routing r(g);
  EXPECT_EQ(max_betweenness_node(r), 0);
}

TEST(KShortest, EnumeratesDistinctLooplessPaths) {
  // Diamond: 0-1-3 and 0-2-3, plus direct 0-3 edge.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const auto paths = k_shortest_paths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], (Path{0, 3}));
  EXPECT_EQ(paths[1], (Path{0, 1, 3}));
  EXPECT_EQ(paths[2], (Path{0, 2, 3}));
}

TEST(KShortest, StopsWhenExhausted) {
  const Graph g = path_graph(3);
  const auto paths = k_shortest_paths(g, 0, 2, 10);
  ASSERT_EQ(paths.size(), 1u);  // A line has exactly one loopless path.
  EXPECT_EQ(paths[0], (Path{0, 1, 2}));
  EXPECT_THROW(k_shortest_paths(g, 0, 2, 0), std::invalid_argument);
}

TEST(KShortest, PathsOrderedByLength) {
  const auto t = make_internet2();
  const auto paths = k_shortest_paths(t.graph, 0, 10, 6);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 0; i + 1 < paths.size(); ++i)
    EXPECT_LE(paths[i].size(), paths[i + 1].size());
  // All loopless.
  for (const auto& p : paths) {
    Path sorted = p;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

}  // namespace
}  // namespace nwlb::topo
