#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nwlb::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Topology", "PoPs", "Time"});
  t.row().cell("Internet2").cell(11).cell(0.05, 2);
  t.row().cell("NTT").cell(70).cell(1.59, 2);
  const std::string text = t.to_string();
  EXPECT_NE(text.find("Internet2"), std::string::npos);
  EXPECT_NE(text.find("1.59"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, JsonOutput) {
  Table t({"name", "count", "ratio"});
  t.row().cell("Internet2").cell(11).cell(0.25, 2);
  t.row().cell("G\"e\\ant").cell(-3).cell("n/a");
  EXPECT_EQ(t.to_json(),
            "[{\"name\":\"Internet2\",\"count\":11,\"ratio\":0.25},"
            "{\"name\":\"G\\\"e\\\\ant\",\"count\":-3,\"ratio\":\"n/a\"}]");
}

TEST(Table, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("\r"), "\\r");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string(1, '\x7f')), std::string(1, '\x7f'));  // Not < 0x20.
}

TEST(Table, ToJsonWithControlCharCellsStaysParseable) {
  // Regression for the exposition pipeline: a cell holding raw control
  // characters must round-trip through to_json as escaped JSON, never as
  // raw bytes inside the string literal.
  Table t({"k"});
  t.row().cell(std::string("a\x02") + "\n\"b");
  const std::string json = t.to_json();
  EXPECT_EQ(json, "[{\"k\":\"a\\u0002\\n\\\"b\"}]");
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Table, ErrorsOnMisuse) {
  Table t({"x"});
  EXPECT_THROW(t.cell("no row yet"), std::logic_error);
  t.row().cell("ok");
  EXPECT_THROW(t.cell("too wide"), std::logic_error);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.row().cell("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('v'), std::string::npos);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
}

}  // namespace
}  // namespace nwlb::util
