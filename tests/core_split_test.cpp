// Split-traffic formulation (§5) invariants under routing asymmetry.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/split_lp.h"
#include "topo/overlap.h"
#include "topo/topology.h"
#include "traffic/matrix.h"
#include "util/rng.h"

namespace nwlb::core {
namespace {

struct SplitFixture {
  topo::Topology topology = topo::make_internet2();
  traffic::TrafficMatrix tm;
  Scenario scenario;

  SplitFixture()
      : tm(traffic::gravity_matrix(topology.graph, traffic::paper_total_sessions(11))),
        scenario(topology, tm) {}

  /// Problem with asymmetric reverse paths at target overlap theta.
  ProblemInput asymmetric_problem(double theta, std::uint64_t seed,
                                  Architecture arch = Architecture::kPathReplicate) {
    ProblemInput input = scenario.problem(arch);
    const topo::AsymmetricRouteGenerator generator(scenario.routing());
    nwlb::util::Rng rng(seed);
    traffic::apply_asymmetry(input.classes, generator, theta, rng);
    return input;
  }
};

TEST(SplitTrafficLp, SymmetricRoutesHaveNoMisses) {
  SplitFixture f;
  const ProblemInput input = f.scenario.problem(Architecture::kPathReplicate);
  const SplitTrafficLp formulation(input);
  const Assignment a = formulation.solve();
  EXPECT_NEAR(a.miss_rate, 0.0, 1e-6);
  for (double cov : a.coverage) EXPECT_NEAR(cov, 1.0, 1e-6);
}

TEST(SplitTrafficLp, IngressMissesUnderAsymmetry) {
  SplitFixture f;
  const ProblemInput input = f.asymmetric_problem(0.5, 1, Architecture::kPathNoReplicate);
  SplitOptions opts;
  opts.mode = SplitMode::kIngressOnly;
  const Assignment a = SplitTrafficLp(input, opts).solve();
  // Fig. 16: ingress-only misses a large share of traffic.  (The paper's
  // >85% is on longer ISP paths; Internet2's 2-3 hop paths leave the
  // ingress on the reverse route more often.)
  EXPECT_GT(a.miss_rate, 0.4);
}

TEST(SplitTrafficLp, DatacenterEliminatesMisses) {
  SplitFixture f;
  const ProblemInput input = f.asymmetric_problem(0.5, 1);
  SplitOptions opts;
  opts.mode = SplitMode::kWithDatacenter;
  const Assignment a = SplitTrafficLp(input, opts).solve();
  // Fig. 16: replication drives the miss rate to (near) zero.
  EXPECT_LT(a.miss_rate, 0.05);
}

TEST(SplitTrafficLp, ModeOrderingOnMissRate) {
  SplitFixture f;
  const ProblemInput dc_input = f.asymmetric_problem(0.3, 2);
  ProblemInput path_input = dc_input;  // Same classes; drop the DC for others.
  path_input.datacenter.attach_pop = -1;
  path_input.capacities = nids::NodeCapacities(f.topology.graph.num_nodes(),
                                               f.scenario.base_capacity());
  path_input.mirror_sets.assign(static_cast<std::size_t>(f.topology.graph.num_nodes()), {});

  SplitOptions ingress_opts;
  ingress_opts.mode = SplitMode::kIngressOnly;
  SplitOptions path_opts;
  path_opts.mode = SplitMode::kOnPathOnly;
  SplitOptions dc_opts;
  dc_opts.mode = SplitMode::kWithDatacenter;

  const double ingress_miss = SplitTrafficLp(path_input, ingress_opts).solve().miss_rate;
  const double path_miss = SplitTrafficLp(path_input, path_opts).solve().miss_rate;
  const double dc_miss = SplitTrafficLp(dc_input, dc_opts).solve().miss_rate;
  EXPECT_LE(path_miss, ingress_miss + 1e-7);
  EXPECT_LE(dc_miss, path_miss + 1e-7);
  EXPECT_LT(dc_miss + 0.2, ingress_miss);  // Strict, large separation.
}

TEST(SplitTrafficLp, CoverageConsistencyPerClass) {
  SplitFixture f;
  const ProblemInput input = f.asymmetric_problem(0.6, 3);
  const Assignment a = SplitTrafficLp(input).solve();
  for (std::size_t c = 0; c < input.classes.size(); ++c) {
    // Process shares only at common nodes.
    const auto common = input.classes[c].common_nodes();
    for (const auto& share : a.process[c])
      EXPECT_TRUE(std::binary_search(common.begin(), common.end(), share.node))
          << "class " << c;
    // Directional sums within [0, 1 + eps].
    double fwd = 0.0, rev = 0.0;
    for (const auto& share : a.process[c]) {
      fwd += share.fraction;
      rev += share.fraction;
    }
    for (const auto& o : a.offloads[c])
      (o.direction == nids::Direction::kForward ? fwd : rev) += o.fraction;
    EXPECT_LE(fwd, 1.0 + 1e-6);
    EXPECT_LE(rev, 1.0 + 1e-6);
    EXPECT_NEAR(a.coverage[c], std::min({fwd, rev, 1.0}), 1e-6);
  }
}

TEST(SplitTrafficLp, HigherOverlapLowersOnPathMissRate) {
  SplitFixture f;
  SplitOptions opts;
  opts.mode = SplitMode::kOnPathOnly;
  auto miss_at = [&](double theta) {
    ProblemInput input = f.asymmetric_problem(theta, 7, Architecture::kPathNoReplicate);
    return SplitTrafficLp(input, opts).solve().miss_rate;
  };
  EXPECT_GT(miss_at(0.15), miss_at(0.9) - 1e-9);
}

TEST(SplitTrafficLp, TightLinkBudgetLimitsCoverage) {
  SplitFixture f;
  ProblemInput input = f.asymmetric_problem(0.2, 4);
  input.max_link_load = 0.0;  // No replication headroom at all.
  const Assignment strangled = SplitTrafficLp(input).solve();
  ProblemInput loose = f.asymmetric_problem(0.2, 4);
  loose.max_link_load = 1.0;
  const Assignment free = SplitTrafficLp(loose).solve();
  EXPECT_GE(strangled.miss_rate, free.miss_rate - 1e-9);
}

TEST(SplitTrafficLp, MaxClassMissExtension) {
  SplitFixture f;
  const ProblemInput input = f.asymmetric_problem(0.5, 5);
  SplitOptions opts;
  opts.max_class_miss = true;
  const Assignment a = SplitTrafficLp(input, opts).solve();
  // Still a valid assignment with sane coverage values.
  for (double cov : a.coverage) {
    EXPECT_GE(cov, -1e-9);
    EXPECT_LE(cov, 1.0 + 1e-9);
  }
}

TEST(SplitTrafficLp, RejectsBadConfig) {
  SplitFixture f;
  const ProblemInput no_dc = f.scenario.problem(Architecture::kPathNoReplicate);
  SplitOptions opts;
  opts.mode = SplitMode::kWithDatacenter;
  EXPECT_THROW(SplitTrafficLp(no_dc, opts), std::invalid_argument);
  SplitOptions bad_gamma;
  bad_gamma.gamma = 0.0;
  EXPECT_THROW(SplitTrafficLp(f.scenario.problem(Architecture::kPathReplicate), bad_gamma),
               std::invalid_argument);
}

}  // namespace
}  // namespace nwlb::core
